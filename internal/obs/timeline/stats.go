package timeline

import (
	"fmt"
	"io"
	"sort"
	"time"

	"kronbip/internal/obs"
)

// GroupStats summarizes the durations of one event group (all events
// sharing a cat and name — e.g. every "core.stream" shard of a run).
// StragglerRatio is max/mean duration: 1.0 means perfectly balanced
// units, 2.0 means the slowest unit ran twice the mean, i.e. the pool
// tail-waited for roughly half that unit's runtime.
type GroupStats struct {
	Cat, Name      string
	Count          int
	Failed         int // events with OK == false
	P50, P99, Max  time.Duration
	Mean           time.Duration
	StragglerRatio float64
}

// Group is the cat/name key, formatted as "cat/name".
func (g GroupStats) Group() string { return g.Cat + "/" + g.Name }

// Stats groups events by cat/name and computes per-group duration
// percentiles and the straggler ratio, sorted by group key.  Groups
// with a single event still report (ratio 1.0) so kernel-call and
// stage groups show up alongside multi-shard pools.
func Stats(events []Event) []GroupStats {
	byKey := map[string][]Event{}
	for _, ev := range events {
		k := ev.Cat + "/" + ev.Name
		byKey[k] = append(byKey[k], ev)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]GroupStats, 0, len(keys))
	for _, k := range keys {
		evs := byKey[k]
		durs := make([]time.Duration, len(evs))
		var sum time.Duration
		failed := 0
		for i, ev := range evs {
			durs[i] = ev.Dur
			sum += ev.Dur
			if !ev.OK {
				failed++
			}
		}
		sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
		g := GroupStats{
			Cat: evs[0].Cat, Name: evs[0].Name,
			Count: len(evs), Failed: failed,
			P50:  percentile(durs, 0.50),
			P99:  percentile(durs, 0.99),
			Max:  durs[len(durs)-1],
			Mean: sum / time.Duration(len(durs)),
		}
		if g.Mean > 0 {
			g.StragglerRatio = float64(g.Max) / float64(g.Mean)
		} else {
			g.StragglerRatio = 1.0
		}
		out = append(out, g)
	}
	return out
}

// percentile returns the p-quantile of sorted durations by
// nearest-rank; p in [0,1].
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// PublishStats exports the per-group stats as gauges on reg (nil
// selects obs.Default), under labeled names such as
//
//	timeline.dur_p50_us{group="shard/core.stream"}
//	timeline.dur_p99_us{group="shard/core.stream"}
//	timeline.dur_max_us{group="shard/core.stream"}
//	timeline.straggler_permille{group="shard/core.stream"}
//
// plus unlabeled timeline.events and timeline.dropped totals, so the
// imbalance summary rides the existing -metrics-out JSON and
// Prometheus exposition.  The straggler ratio is published in permille
// (1000 = balanced) because gauges are integral.
func PublishStats(reg *obs.Registry, groups []GroupStats, events int, dropped uint64) {
	if reg == nil {
		reg = obs.Default
	}
	for _, g := range groups {
		reg.Gauge(obs.Labeled("timeline.dur_p50_us", "group", g.Group())).Set(g.P50.Microseconds())
		reg.Gauge(obs.Labeled("timeline.dur_p99_us", "group", g.Group())).Set(g.P99.Microseconds())
		reg.Gauge(obs.Labeled("timeline.dur_max_us", "group", g.Group())).Set(g.Max.Microseconds())
		reg.Gauge(obs.Labeled("timeline.straggler_permille", "group", g.Group())).Set(int64(g.StragglerRatio * 1000))
	}
	reg.Gauge("timeline.events").Set(int64(events))
	reg.Gauge("timeline.dropped").Set(int64(dropped))
}

// WriteSummary prints the end-of-run imbalance table, one line per
// group:
//
//	timeline shard/core.stream: n=8 fail=0 p50=1.2ms p99=1.9ms max=1.9ms mean=1.3ms straggler=1.46x
func WriteSummary(w io.Writer, groups []GroupStats) error {
	for _, g := range groups {
		_, err := fmt.Fprintf(w, "timeline %s: n=%d fail=%d p50=%s p99=%s max=%s mean=%s straggler=%.2fx\n",
			g.Group(), g.Count, g.Failed,
			round(g.P50), round(g.P99), round(g.Max), round(g.Mean), g.StragglerRatio)
		if err != nil {
			return err
		}
	}
	return nil
}

// round trims durations to 10µs for summary lines.
func round(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }
