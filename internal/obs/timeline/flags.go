package timeline

import (
	"flag"
	"fmt"
	"io"
	"os"

	"kronbip/internal/obs"
)

// Flags is the timeline flag bundle registered alongside obs.Flags by
// both CLIs.  It lives here rather than on obs.Flags because obs cannot
// import timeline (timeline publishes its stats through obs); the usage
// strings cross-reference -trace so the two tracing flags read side by
// side in -help.
//
//	tlFlags := timeline.RegisterFlags(fs)
//	fs.Parse(args)
//	stopTL, err := tlFlags.Start(os.Stderr)
//	if err != nil { return err }
//	// ... run; stopTL() before the obs stop so straggler gauges land
//	// in the -metrics-out snapshot.
type Flags struct {
	TimelineOut string
	JournalOut  string
}

// RegisterFlags binds the timeline flags onto fs and returns the
// destination struct (populated after fs.Parse).
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.TimelineOut, "timeline-out", "", "write a Chrome trace_event JSON timeline of shards/ranks/kernels/stages to this file (open in chrome://tracing or Perfetto; distinct from -trace, the Go runtime trace)")
	fs.StringVar(&f.JournalOut, "journal-out", "", "write a logfmt event journal (same events as -timeline-out) to this file")
	return f
}

// Active reports whether any timeline flag was set.
func (f *Flags) Active() bool { return f.TimelineOut != "" || f.JournalOut != "" }

// Start enables event recording (plus obs instrumentation, which the
// per-shard sites gate on) and returns a stop function that snapshots
// the Default recorder, writes the requested exports, publishes the
// straggler gauges to obs.Default and prints the imbalance summary to
// summaryW (nil suppresses it).  With no flag set both Start and stop
// are no-ops.
func (f *Flags) Start(summaryW io.Writer) (stop func() error, err error) {
	if !f.Active() {
		return func() error { return nil }, nil
	}
	Default.Reset()
	SetEnabled(true)
	obs.SetEnabled(true)
	return func() error {
		SetEnabled(false)
		events, dropped := Default.Snapshot()
		groups := Stats(events)
		PublishStats(obs.Default, groups, len(events), dropped)
		var firstErr error
		if f.TimelineOut != "" {
			if err := writeFile(f.TimelineOut, func(w io.Writer) error {
				return WriteChromeTrace(w, events, dropped)
			}); err != nil {
				firstErr = fmt.Errorf("timeline: -timeline-out: %w", err)
			}
		}
		if f.JournalOut != "" {
			if err := writeFile(f.JournalOut, func(w io.Writer) error {
				return WriteJournal(w, events, dropped)
			}); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("timeline: -journal-out: %w", err)
			}
		}
		if summaryW != nil {
			if err := WriteSummary(summaryW, groups); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}

// writeFile creates path and streams emit into it.
func writeFile(path string, emit func(io.Writer) error) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
