package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// Span/stage timing.  A span measures the wall time of one named stage
// ("core.stream", "grb.mxm") and aggregates {count, total, max} per
// stage path in the registry.  Spans nest through the context: a span
// opened under another span's context records under the joined path
// ("generate/core.stream"), so the per-stage breakdown of a pipeline
// falls out of the snapshot without any global coordination.
//
// When instrumentation is disabled, Span and Timed cost one atomic load
// and return no-ops.

// SpanStats aggregates the completed timings of one span path.
type SpanStats struct {
	count   atomic.Int64
	totalNs atomic.Int64
	maxNs   atomic.Int64
}

func (s *SpanStats) observe(d time.Duration) {
	ns := d.Nanoseconds()
	s.count.Add(1)
	s.totalNs.Add(ns)
	for {
		cur := s.maxNs.Load()
		if ns <= cur || s.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns how many times the span completed.
func (s *SpanStats) Count() int64 { return s.count.Load() }

// Total returns the accumulated wall time.
func (s *SpanStats) Total() time.Duration { return time.Duration(s.totalNs.Load()) }

// Max returns the longest single completion.
func (s *SpanStats) Max() time.Duration { return time.Duration(s.maxNs.Load()) }

// span returns the named span stats, creating them on first use.
func (r *Registry) span(path string) *SpanStats {
	r.mu.RLock()
	s := r.spans[path]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s = r.spans[path]; s == nil {
		s = &SpanStats{}
		r.spans[path] = s
	}
	return s
}

// ObserveSpan records one completed duration under the span path
// directly — the escape hatch for call sites that measure time
// themselves (and for deterministic tests of the export formats).
func (r *Registry) ObserveSpan(path string, d time.Duration) {
	r.span(path).observe(d)
}

// spanKey carries the enclosing span path through the context.
type spanKey struct{}

var noopDone = func() {}

// StartSpan opens a span named name in r, nesting under any span already
// on ctx.  It returns the derived context to pass downstream and a done
// function recording the elapsed wall time; call done exactly once.
// Disabled instrumentation returns ctx unchanged and a no-op.
func (r *Registry) StartSpan(ctx context.Context, name string) (context.Context, func()) {
	if !Enabled() {
		return ctx, noopDone
	}
	path := name
	if parent, ok := ctx.Value(spanKey{}).(string); ok && parent != "" {
		path = parent + "/" + name
	}
	stats := r.span(path)
	start := time.Now()
	return context.WithValue(ctx, spanKey{}, path), func() {
		stats.observe(time.Since(start))
	}
}

// Span opens a span in the Default registry; see Registry.StartSpan.
//
//	ctx, done := obs.Span(ctx, "kron.mxm")
//	defer done()
func Span(ctx context.Context, name string) (context.Context, func()) {
	return Default.StartSpan(ctx, name)
}

// Timed times a stage with no context to nest through, recording under
// the bare name in the Default registry:
//
//	defer obs.Timed("experiments.tab1")()
func Timed(name string) func() {
	if !Enabled() {
		return noopDone
	}
	stats := Default.span(name)
	start := time.Now()
	return func() { stats.observe(time.Since(start)) }
}
