package obs

import (
	"strings"
	"testing"
	"time"
)

// sloFixture builds an SLO over a private registry with injected-time
// ticks: 10s window, 100ms p99 objective, 10% error objective.
func sloFixture(t *testing.T) (*Registry, *SLO, *Histogram, *Counter, *Counter, time.Time) {
	t.Helper()
	r := NewRegistry()
	h := r.Histogram("t.seconds", 0.001, 0.01, 0.1, 1)
	reqs := r.Counter("t.requests")
	errs := r.Counter("t.errors")
	s := NewSLO(r, "t.slo", h, reqs, errs, SLOOptions{
		Window:       10 * time.Second,
		MinInterval:  time.Second,
		P99Max:       100 * time.Millisecond,
		ErrorRateMax: 0.10,
	})
	return r, s, h, reqs, errs, time.Now()
}

func TestSLOIdleIsHealthy(t *testing.T) {
	_, s, _, _, _, t0 := sloFixture(t)
	st := s.Tick(t0.Add(2 * time.Second))
	if !st.Healthy || st.Requests != 0 || st.P99 != 0 || st.ErrorRate != 0 {
		t.Fatalf("idle status = %+v, want healthy zeroes", st)
	}
}

func TestSLOWindowedLatency(t *testing.T) {
	r, s, h, reqs, _, t0 := sloFixture(t)
	for i := 0; i < 100; i++ {
		h.Observe(0.005) // all land in the 0.01 bucket
		reqs.Inc()
	}
	st := s.Tick(t0.Add(2 * time.Second))
	if !st.Healthy {
		t.Fatalf("fast traffic burned the SLO: %+v", st)
	}
	if st.P99 != 10*time.Millisecond || st.P50 != 10*time.Millisecond {
		t.Errorf("p50/p99 = %s/%s, want 10ms bucket bound for both", st.P50, st.P99)
	}
	if st.Requests != 100 {
		t.Errorf("window requests = %d, want 100", st.Requests)
	}
	if got := r.Gauge("t.slo.p99_us").Value(); got != 10000 {
		t.Errorf("p99 gauge = %d, want 10000", got)
	}
	if got := r.Gauge("t.slo.healthy").Value(); got != 1 {
		t.Errorf("healthy gauge = %d, want 1", got)
	}

	// A slow tail pushes p99 past the objective.
	for i := 0; i < 50; i++ {
		h.Observe(0.5) // 1s bucket
		reqs.Inc()
	}
	st = s.Tick(t0.Add(4 * time.Second))
	if st.Healthy {
		t.Fatalf("slow tail did not burn the SLO: %+v", st)
	}
	if st.P99 != time.Second {
		t.Errorf("p99 = %s, want 1s bucket bound", st.P99)
	}
	if !strings.Contains(st.Reason, "p99") {
		t.Errorf("reason = %q, want a p99 burn", st.Reason)
	}
	if got := r.Gauge("t.slo.healthy").Value(); got != 0 {
		t.Errorf("healthy gauge = %d, want 0", got)
	}
}

func TestSLOErrorRateBurn(t *testing.T) {
	_, s, h, reqs, errs, t0 := sloFixture(t)
	for i := 0; i < 100; i++ {
		h.Observe(0.001)
		reqs.Inc()
	}
	errs.Add(20) // 20% > the 10% objective
	st := s.Tick(t0.Add(2 * time.Second))
	if st.Healthy {
		t.Fatalf("20%% errors did not burn the SLO: %+v", st)
	}
	if st.ErrorRate != 0.2 || st.Errors != 20 {
		t.Errorf("error rate/errors = %v/%d, want 0.2/20", st.ErrorRate, st.Errors)
	}
	if !strings.Contains(st.Reason, "error rate") {
		t.Errorf("reason = %q, want an error-rate burn", st.Reason)
	}
}

// TestSLOWindowAges: burn traffic falls out of the rolling window and
// the evaluator recovers on its own.
func TestSLOWindowAges(t *testing.T) {
	_, s, h, reqs, errs, t0 := sloFixture(t)
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
		reqs.Inc()
	}
	errs.Add(10)
	if st := s.Tick(t0.Add(2 * time.Second)); st.Healthy {
		t.Fatalf("burn not detected: %+v", st)
	}
	// Two window-widths later with no new traffic, the old samples have
	// aged out and the window delta is clean.
	s.Tick(t0.Add(15 * time.Second))
	st := s.Tick(t0.Add(25 * time.Second))
	if !st.Healthy || st.Requests != 0 {
		t.Fatalf("status after burn aged out = %+v, want healthy and idle", st)
	}
}

// TestSLOMaybeTickRateLimit: calls inside MinInterval return the cached
// status without re-sampling.
func TestSLOMaybeTickRateLimit(t *testing.T) {
	_, s, h, reqs, _, t0 := sloFixture(t)
	at := t0.Add(2 * time.Second)
	st1 := s.MaybeTick(at)
	h.Observe(0.5)
	reqs.Inc()
	st2 := s.MaybeTick(at.Add(100 * time.Millisecond))
	if !st2.At.Equal(st1.At) || st2.Requests != st1.Requests {
		t.Fatalf("MaybeTick inside MinInterval re-evaluated: %+v vs %+v", st2, st1)
	}
	st3 := s.MaybeTick(at.Add(2 * time.Second))
	if st3.At.Equal(st1.At) || st3.Requests != 1 {
		t.Fatalf("MaybeTick past MinInterval did not re-evaluate: %+v", st3)
	}
}

func TestSLOObjectivesDisabled(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t.seconds", 0.001, 1)
	reqs, errs := r.Counter("t.requests"), r.Counter("t.errors")
	s := NewSLO(r, "t.slo", h, reqs, errs, SLOOptions{P99Max: -1, ErrorRateMax: -1})
	for i := 0; i < 10; i++ {
		h.Observe(100) // +Inf bucket
		reqs.Inc()
	}
	errs.Add(10)
	if st := s.Tick(time.Now().Add(2 * time.Second)); !st.Healthy {
		t.Fatalf("disabled objectives still burned: %+v", st)
	}
}

func TestBucketQuantile(t *testing.T) {
	bounds := []float64{0.001, 0.01, 0.1, 1}
	cases := []struct {
		deltas []int64
		q      float64
		want   time.Duration
	}{
		{[]int64{0, 0, 0, 0, 0}, 0.99, 0},
		{[]int64{100, 0, 0, 0, 0}, 0.99, time.Millisecond},
		{[]int64{99, 0, 0, 1, 0}, 0.99, time.Millisecond}, // nearest rank: 99th of 100 is still fast
		{[]int64{98, 0, 0, 2, 0}, 0.99, time.Second},
		{[]int64{99, 0, 0, 1, 0}, 0.50, time.Millisecond},
		{[]int64{0, 0, 0, 0, 5}, 0.50, time.Second}, // +Inf rank floors at the last finite bound
		{[]int64{50, 50, 0, 0, 0}, 0.50, time.Millisecond},
		{[]int64{50, 50, 0, 0, 0}, 0.51, 10 * time.Millisecond},
	}
	for _, c := range cases {
		if got := bucketQuantile(bounds, c.deltas, c.q); got != c.want {
			t.Errorf("bucketQuantile(%v, q=%v) = %s, want %s", c.deltas, c.q, got, c.want)
		}
	}
}
