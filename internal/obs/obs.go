// Package obs is the repository's dependency-free observability layer:
// a metrics registry (atomic counters, gauges and fixed-bucket
// histograms), nested span/stage timing, a periodic structured progress
// reporter, and profiling hooks.  Every generation, counting and kernel
// path reports through this one package so that a multi-hour streaming
// run over a (A+I)⊗A product is never a black box, and so perf PRs have
// machine-readable numbers to be judged by.
//
// Overhead contract (see DESIGN.md §8): instrumentation is off by
// default.  While disabled, per-edge hot paths take their original,
// uninstrumented code path (the only cost is one atomic load per shard
// when choosing it), spans are a single atomic load, and per-shard pool
// accounting is skipped.  While enabled, hot-path counters are batched —
// the streaming generator flushes its edge counter once every 1024
// edges, kernels derive flop counts outside their inner loops — so the
// enabled cost stays far below one atomic op per element.
//
// Metric handles are cheap pointers: resolve them once (package-level
// var or at stage start), then Add/Observe without further lookups.
// Names are dotted paths ("core.stream.edges"); Labeled composes a
// Prometheus-style label suffix for per-shard/per-rank series.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// enabled is the global instrumentation switch; see the package comment
// for the overhead contract it gates.
var enabled atomic.Bool

// SetEnabled flips global instrumentation on or off.  The CLIs enable it
// when any observability flag is set; tests may toggle it directly.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether instrumentation is on.  Hot paths read it once
// per shard/stage (not per element) to pick a code path.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (use batched deltas on hot paths).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (pool occupancy, heap bytes).
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrement) and returns the new value, so
// occupancy-style gauges can feed their high-water mark in one call.
func (g *Gauge) Add(n int64) int64 { return g.v.Add(n) }

// Max raises the gauge to n if n exceeds the current value — the
// high-water-mark operation (e.g. peak pool occupancy).
func (g *Gauge) Max(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefSecondsBuckets is the default histogram bucketing, tuned for
// wall-time observations in seconds from sub-millisecond kernel calls to
// multi-minute shards.
var DefSecondsBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60, 300}

// Histogram is a fixed-bucket histogram: observations are counted into
// the first bucket whose upper bound is >= the value (Prometheus "le"
// semantics), with an implicit +Inf bucket at the end.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefSecondsBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.  Safe for concurrent use.
func (h *Histogram) Observe(v float64) {
	h.buckets[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the (sorted) finite upper bounds.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Registry holds named metrics.  Lookup is get-or-create and safe for
// concurrent use; handles stay valid for the registry's lifetime.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    map[string]*SpanStats
	help     map[string]string // base name → HELP text (Prometheus export)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		spans:    map[string]*SpanStats{},
		help:     map[string]string{},
	}
}

// Default is the process-wide registry every built-in instrumentation
// site reports to and the CLIs export from.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// finite upper bounds on first use (empty bounds select
// DefSecondsBuckets).  Later calls return the existing histogram
// regardless of the bounds argument.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Reset drops every metric; existing handles keep counting into orphaned
// metrics.  Intended for tests.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = map[string]*Counter{}
	r.gauges = map[string]*Gauge{}
	r.hists = map[string]*Histogram{}
	r.spans = map[string]*SpanStats{}
	r.help = map[string]string{}
}

// SetHelp attaches Prometheus HELP text to a metric family, keyed by the
// unlabeled base name ("runtime.heap_bytes").  The exporter emits it
// once per merged family, ahead of the TYPE line; families without help
// render TYPE only, as before.
func (r *Registry) SetHelp(base, text string) {
	r.mu.Lock()
	r.help[base] = text
	r.mu.Unlock()
}

// Labeled composes a metric name with one label, Prometheus-style:
// Labeled("core.stream.edges", "shard", 3) → `core.stream.edges{shard="3"}`.
// The export layer understands the suffix, so labeled series group under
// one metric family in the Prometheus rendering.
func Labeled(base, key string, value any) string {
	return fmt.Sprintf("%s{%s=%q}", base, key, fmt.Sprint(value))
}
