package obs

import (
	"sync"
	"testing"
)

func TestREDRouteResolvesLabeledSeries(t *testing.T) {
	r := NewRegistry()
	red := NewRED(r, "svc.http", 0.01, 0.1, 1)
	rt := red.Route("truth")
	rt.Observe(200, 0.005, 100)
	rt.Observe(500, 0.5, 20)
	rt.Observe(404, 0.02, 0)

	snap := r.Snapshot()
	if got := snap.Counters[`svc.http.requests{route="truth"}`]; got != 3 {
		t.Errorf("requests = %d, want 3", got)
	}
	if got := snap.Counters[`svc.http.errors{route="truth"}`]; got != 1 {
		t.Errorf("errors = %d, want 1 (only the 500; 4xx is not an error)", got)
	}
	if got := snap.Counters[`svc.http.bytes{route="truth"}`]; got != 120 {
		t.Errorf("bytes = %d, want 120", got)
	}
	h := snap.Histograms[`svc.http.seconds{route="truth"}`]
	if h.Count != 3 {
		t.Errorf("seconds histogram count = %d, want 3", h.Count)
	}
}

// TestREDRouteStableHandle: repeated lookups return the same bundle —
// the copy-on-write table caches, never rebuilds.
func TestREDRouteStableHandle(t *testing.T) {
	red := NewRED(NewRegistry(), "svc.http")
	a, b := red.Route("stats"), red.Route("stats")
	if a != b {
		t.Fatal("Route returned distinct handles for one route")
	}
	if red.Route("other") == a {
		t.Fatal("distinct routes share a handle")
	}
}

// TestREDConcurrentResolve hammers get-or-create from many goroutines;
// meaningful under -race, and the final counts prove no increment was
// lost to a table swap.
func TestREDConcurrentResolve(t *testing.T) {
	r := NewRegistry()
	red := NewRED(r, "svc.http")
	routes := []string{"a", "b", "c", "d"}
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				red.Route(routes[(w+i)%len(routes)]).Observe(200, 0.001, 1)
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, rt := range routes {
		total += r.Counter(Labeled("svc.http.requests", "route", rt)).Value()
	}
	if total != workers*iters {
		t.Fatalf("requests across routes = %d, want %d", total, workers*iters)
	}
}
