package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// FlightRecorder is the always-on post-mortem trail: a fixed-size ring
// of timestamped control-plane events (job lifecycle, admission
// decisions, SLO transitions, request records, signal handling,
// periodic metric snapshots) that the process can dump when something
// goes wrong — SIGQUIT, GET /debug/flightrecorder, or a panic on its
// way up.  Unlike the metrics registry (aggregates, no ordering) and
// the timeline (opt-in, per-shard data plane), the recorder is cheap
// enough to leave on unconditionally: recording sites are per
// job/request/tick, never per edge, and an append is one mutex-guarded
// store of a fixed-size record into a preallocated ring — zero
// allocations in steady state (strings are stored by reference;
// callers pass static or already-built strings, never fmt.Sprintf
// results built only for the recorder).
//
// The dump (WriteDump) renders oldest-first logfmt event lines plus a
// one-line compact JSON snapshot of the metrics registry, so a single
// SIGQUIT gives both the event ordering ("what happened just before")
// and the aggregate state ("what the gauges said when it did").
type FlightRecorder struct {
	cap int

	mu   sync.Mutex
	ring []FlightEvent // allocated on first Record
	n    uint64        // total events ever recorded
}

// FlightSeverity classifies an event for dump filtering.
type FlightSeverity uint8

// Severities, in increasing order of operator urgency.
const (
	FlightDebug FlightSeverity = iota // periodic ticks, snapshots
	FlightInfo                        // normal lifecycle (jobs, requests)
	FlightWarn                        // admission rejections, SLO transitions, 5xx
	FlightError                       // panics, job failures
)

func (s FlightSeverity) String() string {
	switch s {
	case FlightDebug:
		return "debug"
	case FlightInfo:
		return "info"
	case FlightWarn:
		return "warn"
	case FlightError:
		return "error"
	default:
		return fmt.Sprintf("sev%d", uint8(s))
	}
}

// FlightEvent is one fixed-layout ring record.  Cat names the event
// source ("job", "http", "slo", "signal", "snapshot"), Msg the event
// itself, and N1/N2 carry two small numeric payloads whose meaning is
// per-category (job seq / HTTP status, duration µs / gauge values).
// Note is optional free-form correlation text (request id).
type FlightEvent struct {
	At   time.Time
	Sev  FlightSeverity
	Cat  string
	Msg  string
	N1   int64
	N2   int64
	Note string
}

// DefaultFlightCapacity is the ring size when NewFlightRecorder is
// given zero: at serve's per-request/per-job recording rates, thousands
// of events cover minutes of history in a few hundred KB.
const DefaultFlightCapacity = 4096

// NewFlightRecorder returns a recorder holding the last `capacity`
// events (0 selects DefaultFlightCapacity).  The ring itself is
// allocated on first use.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{cap: capacity}
}

// Flight is the process-wide recorder every built-in recording site
// appends to and the dump surfaces read.
var Flight = NewFlightRecorder(0)

// Record appends one event stamped now.  Safe for concurrent use;
// allocation-free once the ring exists.
func (r *FlightRecorder) Record(sev FlightSeverity, cat, msg string, n1, n2 int64) {
	r.RecordNote(sev, cat, msg, n1, n2, "")
}

// RecordNote is Record with a correlation note (request id, reason).
// The note must be a string the caller already has — building one just
// for the recorder would void the allocation-free contract.
func (r *FlightRecorder) RecordNote(sev FlightSeverity, cat, msg string, n1, n2 int64, note string) {
	at := time.Now()
	r.mu.Lock()
	if r.ring == nil {
		r.ring = make([]FlightEvent, r.cap)
	}
	r.ring[r.n%uint64(r.cap)] = FlightEvent{At: at, Sev: sev, Cat: cat, Msg: msg, N1: n1, N2: n2, Note: note}
	r.n++
	r.mu.Unlock()
}

// Snapshot copies the retained events oldest-first and reports how many
// older events the ring has already overwritten.
func (r *FlightRecorder) Snapshot() (events []FlightEvent, dropped uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return nil, 0
	}
	kept := r.n
	if kept > uint64(r.cap) {
		kept = uint64(r.cap)
		dropped = r.n - kept
	}
	events = make([]FlightEvent, 0, kept)
	start := r.n - kept
	for i := start; i < r.n; i++ {
		events = append(events, r.ring[i%uint64(r.cap)])
	}
	return events, dropped
}

// Len reports how many events the ring currently retains.
func (r *FlightRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n > uint64(r.cap) {
		return r.cap
	}
	return int(r.n)
}

// WriteDump writes the post-mortem dump: a header line, one logfmt line
// per retained event (oldest first), and — when reg is non-nil — a
// final "metrics" line holding reg's compact JSON snapshot (the runtime
// gauges are refreshed first when reg is the Default registry).
func (r *FlightRecorder) WriteDump(w io.Writer, reg *Registry) error {
	events, dropped := r.Snapshot()
	if _, err := fmt.Fprintf(w, "flightrec dump t=%s events=%d dropped=%d\n",
		time.Now().UTC().Format(time.RFC3339Nano), len(events), dropped); err != nil {
		return err
	}
	for i := range events {
		ev := &events[i]
		var err error
		if ev.Note != "" {
			_, err = fmt.Fprintf(w, "flight t=%s sev=%s cat=%s ev=%q n1=%d n2=%d note=%q\n",
				ev.At.UTC().Format(time.RFC3339Nano), ev.Sev, ev.Cat, ev.Msg, ev.N1, ev.N2, ev.Note)
		} else {
			_, err = fmt.Fprintf(w, "flight t=%s sev=%s cat=%s ev=%q n1=%d n2=%d\n",
				ev.At.UTC().Format(time.RFC3339Nano), ev.Sev, ev.Cat, ev.Msg, ev.N1, ev.N2)
		}
		if err != nil {
			return err
		}
	}
	if reg != nil {
		reg.maybeSampleRuntime()
		if _, err := io.WriteString(w, "metrics "); err != nil {
			return err
		}
		enc := json.NewEncoder(w) // compact: one line, greppable
		if err := enc.Encode(reg.Snapshot()); err != nil {
			return err
		}
	}
	return nil
}

// DumpFlight writes the process-wide recorder's dump (with the Default
// registry's metrics) — the one-call surface the SIGQUIT and panic
// paths use.
func DumpFlight(w io.Writer) error {
	return Flight.WriteDump(w, Default)
}

// FlightHandler serves the process-wide recorder's dump over HTTP (the
// /debug/flightrecorder endpoint) with reg's metrics appended.
func FlightHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = Flight.WriteDump(w, reg)
	})
}
