package obs

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestFlagsInactiveIsNoop(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := RegisterFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.Active() {
		t.Fatal("no flags set but Active() = true")
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Fatal("inactive Start must not enable instrumentation")
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestFlagsLifecycle(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := RegisterFlags(fs)
	args := []string{
		"-progress", "10ms",
		"-metrics-out", filepath.Join(dir, "m.json"),
		"-cpuprofile", filepath.Join(dir, "cpu.pprof"),
		"-memprofile", filepath.Join(dir, "mem.pprof"),
		"-trace", filepath.Join(dir, "trace.out"),
	}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	if !f.Active() || f.Progress != 10*time.Millisecond {
		t.Fatalf("flags = %+v", f)
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("Start must enable instrumentation")
	}
	Default.Counter("flags.test.counter").Add(7)
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Fatal("stop must disable instrumentation")
	}

	// Every artifact exists and the snapshot round-trips.
	for _, name := range []string{"m.json", "cpu.pprof", "mem.pprof", "trace.out"} {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name != "cpu.pprof" && info.Size() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "m.json"))
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["flags.test.counter"] != 7 {
		t.Fatalf("snapshot counters = %v", snap.Counters)
	}
}
