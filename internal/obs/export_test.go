package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// goldenRegistry builds the deterministic registry the export goldens
// render: one of everything, including labeled series and a nested
// span.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("core.stream.edges").Add(108)
	r.Counter(Labeled("core.stream.edges", "shard", 0)).Add(62)
	r.Counter(Labeled("core.stream.edges", "shard", 1)).Add(46)
	r.Counter("exec.pool.tasks").Add(2)
	r.Gauge("exec.pool.peak").Set(2)
	h := r.Histogram("core.stream.shard_seconds", 0.005, 0.05, 0.5)
	for _, v := range []float64{0.001, 0.004, 0.02, 0.3, 2.5} {
		h.Observe(v)
	}
	r.ObserveSpan("generate/core.stream", 1500*time.Millisecond)
	r.ObserveSpan("generate/core.stream", 500*time.Millisecond)
	r.ObserveSpan("generate", 2*time.Second)
	return r
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("prometheus output drifted from golden.\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
	// Rendering twice must be byte-identical (deterministic ordering).
	var again bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two renderings of the same registry differ")
	}
}

func TestJSONSnapshotShape(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if snap.Counters["core.stream.edges"] != 108 {
		t.Fatalf("counters = %v", snap.Counters)
	}
	if snap.Counters[`core.stream.edges{shard="1"}`] != 46 {
		t.Fatalf("labeled counter missing: %v", snap.Counters)
	}
	if snap.Gauges["exec.pool.peak"] != 2 {
		t.Fatalf("gauges = %v", snap.Gauges)
	}
	h, ok := snap.Histograms["core.stream.shard_seconds"]
	if !ok || h.Count != 5 {
		t.Fatalf("histogram snapshot = %+v", h)
	}
	if last := h.Buckets[len(h.Buckets)-1]; last.LE != "+Inf" || last.Count != 1 {
		t.Fatalf("+Inf bucket = %+v", last)
	}
	sp, ok := snap.Spans["generate/core.stream"]
	if !ok || sp.Count != 2 || sp.TotalSeconds != 2.0 || sp.MaxSeconds != 1.5 {
		t.Fatalf("span snapshot = %+v", sp)
	}
}

func TestHTTPHandlers(t *testing.T) {
	r := goldenRegistry()
	srv, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := httpGet("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp
	}
	if body := get("/metrics"); !bytes.Contains(body, []byte("core_stream_edges")) {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if body := get("/metrics.json"); !bytes.Contains(body, []byte(`"core.stream.edges"`)) {
		t.Fatalf("/metrics.json missing counter:\n%s", body)
	}
	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}
