package obs

import (
	"io"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestRuntimeCollectorPublishesGauges(t *testing.T) {
	r := NewRegistry()
	c := NewRuntimeCollector(r, RuntimeOptions{})
	c.Sample(time.Now())
	snap := r.Snapshot()
	if v := snap.Gauges["runtime.heap_bytes"]; v <= 0 {
		t.Fatalf("runtime.heap_bytes = %d, want > 0", v)
	}
	if v := snap.Gauges["runtime.live_objects"]; v <= 0 {
		t.Fatalf("runtime.live_objects = %d, want > 0", v)
	}
	if v := snap.Gauges["runtime.goroutines"]; v < 1 {
		t.Fatalf("runtime.goroutines = %d, want >= 1", v)
	}
	// Registered eagerly: the name set is complete even before any
	// GC/sched activity moved the windowed gauges.
	for _, name := range []string{
		"runtime.gc_cycles", "runtime.gc_pause_p99_us",
		"runtime.sched_latency_p99_us", "runtime.gc_cpu_permille",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Fatalf("gauge %s not registered", name)
		}
	}
}

func TestRuntimeCollectorRateLimit(t *testing.T) {
	r := NewRegistry()
	c := NewRuntimeCollector(r, RuntimeOptions{MinInterval: time.Hour})
	base := time.Now()
	c.MaybeSample(base)
	if c.last != base {
		t.Fatalf("first MaybeSample did not sample")
	}
	// Inside the interval: rate-limited, the sample stamp must not move.
	c.MaybeSample(base.Add(time.Minute))
	if c.last != base {
		t.Fatalf("MaybeSample inside MinInterval re-sampled (last = %v)", c.last)
	}
	// Past the interval: samples again.
	later := base.Add(2 * time.Hour)
	c.MaybeSample(later)
	if c.last != later {
		t.Fatalf("MaybeSample past MinInterval did not sample (last = %v)", c.last)
	}
	// Sample is unconditional.
	forced := later.Add(time.Second)
	c.Sample(forced)
	if c.last != forced {
		t.Fatalf("Sample did not bypass the rate limit (last = %v)", c.last)
	}
}

func TestRuntimeCollectorWindowedPause(t *testing.T) {
	r := NewRegistry()
	c := NewRuntimeCollector(r, RuntimeOptions{})
	c.Sample(time.Now())
	// Force GC cycles so the second sample has a non-empty pause window;
	// the windowed p99 must be a sane pause (under a second), not a
	// lifetime aggregate artifact.
	runtime.GC()
	runtime.GC()
	c.Sample(time.Now())
	p99 := r.Snapshot().Gauges["runtime.gc_pause_p99_us"]
	if p99 < 0 || p99 > 1e6 {
		t.Fatalf("windowed gc pause p99 = %dus, want [0, 1s]", p99)
	}
	if cycles := r.Snapshot().Gauges["runtime.gc_cycles"]; cycles < 2 {
		t.Fatalf("runtime.gc_cycles = %d after two forced GCs", cycles)
	}
}

func TestHistP99Micros(t *testing.T) {
	// Buckets [0, 1ms, 10ms, +Inf); cumulative counts place everything
	// new in the 1–10ms bucket, so the windowed p99 is its 10ms bound.
	buckets := []float64{0, 0.001, 0.010, inf()}
	prev := histState{buckets: buckets, counts: []uint64{5, 0, 0}}
	cur := histState{buckets: buckets, counts: []uint64{5, 100, 0}}
	if got := histP99Micros(cur, prev); got != 10000 {
		t.Fatalf("p99 = %dus, want 10000", got)
	}
	// Empty window: zero.
	if got := histP99Micros(prev, prev); got != 0 {
		t.Fatalf("empty-window p99 = %dus, want 0", got)
	}
	// Rank landing in the +Inf bucket reports the last finite bound.
	tail := histState{buckets: buckets, counts: []uint64{0, 0, 50}}
	if got := histP99Micros(tail, histState{}); got != 10000 {
		t.Fatalf("+Inf-bucket p99 = %dus, want 10000 (last finite bound)", got)
	}
}

func TestAllocSnapshotMonotone(t *testing.T) {
	b0, o0 := AllocSnapshot()
	if b0 <= 0 || o0 <= 0 {
		t.Fatalf("baseline alloc snapshot = %d bytes, %d objects", b0, o0)
	}
	sink := make([][]byte, 0, 1000)
	for i := 0; i < 1000; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	b1, o1 := AllocSnapshot()
	// The runtime buffers alloc accounting per-P, so the delta can lag
	// the true figure slightly; 900KB of a ~1MB burst must still show.
	if b1-b0 < 900*1024 {
		t.Fatalf("alloc byte delta = %d after allocating ~1MB", b1-b0)
	}
	if o1 <= o0 {
		t.Fatalf("alloc object count did not grow: %d -> %d", o0, o1)
	}
	runtime.KeepAlive(sink)
}

func TestRuntimeCollectorStart(t *testing.T) {
	r := NewRegistry()
	c := NewRuntimeCollector(r, RuntimeOptions{})
	if stop := c.Start(0); stop == nil {
		t.Fatal("Start(0) returned nil stop")
	} else {
		stop() // no goroutine to stop; must still be callable
	}
	stop := c.Start(time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	stop()
	stop() // double-stop is safe
	if r.Snapshot().Gauges["runtime.heap_bytes"] <= 0 {
		t.Fatal("background sampler never published")
	}
}

// TestRuntimeCollectorSampleVsScrape races fixed-cadence sampling,
// pull-driven MaybeSample, and exporter scrapes; run under -race (make
// race) it proves the collector's lock discipline against the registry
// render paths.
func TestRuntimeCollectorSampleVsScrape(t *testing.T) {
	r := NewRegistry()
	c := NewRuntimeCollector(r, RuntimeOptions{MinInterval: time.Microsecond})
	stop := c.Start(100 * time.Microsecond)
	defer stop()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c.MaybeSample(time.Now())
				_ = r.WritePrometheus(io.Discard)
				_ = r.Snapshot()
				_ = c.HeapBytes(time.Now())
			}
		}()
	}
	wg.Wait()
}

func inf() float64 { return math.Inf(1) }
