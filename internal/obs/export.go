package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Export formats.  One registry snapshot serves two consumers:
//
//   - WriteJSON: an expvar-style JSON document (-metrics-out, the
//     /metrics.json endpoint) — the machine-readable run record the
//     BENCH trajectory and perf PRs diff against;
//   - WritePrometheus: the Prometheus text exposition format
//     (/metrics) for scraping long-lived runs.
//
// Both renderings are deterministic (sorted names) so they can be
// golden-tested and diffed across runs.

// BucketCount is one histogram bucket in a snapshot.  LE is the upper
// bound rendered as a string ("0.005", "+Inf") because JSON has no
// encoding for infinity; Count is the non-cumulative bucket count.
type BucketCount struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// HistogramSnapshot is a histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Buckets []BucketCount `json:"buckets"`
}

// SpanSnapshot is a span path's aggregate at snapshot time.
type SpanSnapshot struct {
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
}

// Snapshot is a point-in-time copy of a registry, shaped for JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Spans      map[string]SpanSnapshot      `json:"spans"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := &Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
		Spans:      make(map[string]SpanSnapshot, len(r.spans)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		for i := range h.buckets {
			le := "+Inf"
			if i < len(h.bounds) {
				le = formatFloat(h.bounds[i])
			}
			hs.Buckets = append(hs.Buckets, BucketCount{LE: le, Count: h.buckets[i].Load()})
		}
		s.Histograms[name] = hs
	}
	for path, sp := range r.spans {
		s.Spans[path] = SpanSnapshot{
			Count:        sp.Count(),
			TotalSeconds: sp.Total().Seconds(),
			MaxSeconds:   sp.Max().Seconds(),
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON (keys sorted by
// encoding/json's map ordering, so output is deterministic).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// splitLabels separates a Labeled metric name into its base and label
// suffix: `a.b{shard="3"}` → ("a.b", `shard="3"`).
func splitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// promName sanitizes a dotted metric base into a legal Prometheus metric
// name: every rune outside [a-zA-Z0-9_:] becomes '_'.
func promName(base string) string {
	var b strings.Builder
	for i, r := range base {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// promEscapeValue escapes a raw label value per the Prometheus text
// exposition rules: backslash, double quote and newline get escaped,
// everything else (tabs included) passes through raw.
func promEscapeValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// promEscapeHelp escapes HELP text: backslash and newline only (quotes
// are legal in help lines).
func promEscapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promLabels normalizes a label body built by Labeled (Go %q quoting)
// into Prometheus escaping: each `key="<go-quoted>"` pair is unquoted
// and re-escaped with exactly the \\, \" and \n sequences the
// exposition format defines — Go's %q additionally escapes tabs and
// non-printables as \t/\xNN, which a Prometheus parser would read as a
// literal backslash sequence.  A body that does not parse as quoted
// pairs is passed through verbatim.
func promLabels(labels string) string {
	if !strings.Contains(labels, `\`) {
		// Fast path: no escape sequences at all — %q only emits a
		// backslash when something needed escaping.
		return labels
	}
	var b strings.Builder
	rest := labels
	first := true
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return labels
		}
		q, err := strconv.QuotedPrefix(rest[eq+1:])
		if err != nil {
			return labels
		}
		raw, err := strconv.Unquote(q)
		if err != nil {
			return labels
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(rest[:eq])
		b.WriteString(`="`)
		b.WriteString(promEscapeValue(raw))
		b.WriteByte('"')
		rest = rest[eq+1+len(q):]
		if rest != "" {
			if rest[0] != ',' {
				return labels
			}
			rest = rest[1:]
		}
	}
	return b.String()
}

// promLine renders one exposition line: name, optional label body,
// value.
func promLine(name, labels, value string) string {
	if labels != "" {
		name += "{" + labels + "}"
	}
	return name + " " + value + "\n"
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4).  Labeled series (see Labeled) group with their
// unlabeled base under a single metric family; spans export as the
// span_count / span_seconds_total / span_seconds_max families labeled by
// span path.  Output is fully sorted and deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()

	type family struct {
		typ   string
		lines []string // one rendered exposition line each, sorted before output
	}
	families := map[string]*family{}
	add := func(name, typ, line string) {
		f := families[name]
		if f == nil {
			f = &family{typ: typ}
			families[name] = f
		}
		f.lines = append(f.lines, line)
	}

	for name, v := range snap.Counters {
		base, labels := splitLabels(name)
		pn := promName(base)
		add(pn, "counter", promLine(pn, promLabels(labels), strconv.FormatInt(v, 10)))
	}
	for name, v := range snap.Gauges {
		base, labels := splitLabels(name)
		pn := promName(base)
		add(pn, "gauge", promLine(pn, promLabels(labels), strconv.FormatInt(v, 10)))
	}
	for name, h := range snap.Histograms {
		base, labels := splitLabels(name)
		pn := promName(base)
		labels = promLabels(labels)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			le := `le="` + b.LE + `"`
			if labels != "" {
				le = labels + "," + le
			}
			add(pn, "histogram", promLine(pn+"_bucket", le, strconv.FormatInt(cum, 10)))
		}
		add(pn, "histogram", promLine(pn+"_sum", labels, formatFloat(h.Sum)))
		add(pn, "histogram", promLine(pn+"_count", labels, strconv.FormatInt(h.Count, 10)))
	}
	for path, sp := range snap.Spans {
		label := promLabels(fmt.Sprintf("span=%q", path))
		add("span_count", "counter", promLine("span_count", label, strconv.FormatInt(sp.Count, 10)))
		add("span_seconds_total", "counter", promLine("span_seconds_total", label, formatFloat(sp.TotalSeconds)))
		add("span_seconds_max", "gauge", promLine("span_seconds_max", label, formatFloat(sp.MaxSeconds)))
	}

	// HELP text, keyed by the rendered (prom) family name.  Sorted
	// iteration makes a collision (two dotted bases sanitizing to one
	// prom name) deterministic: the lexically-first base wins.
	r.mu.RLock()
	helpBases := make([]string, 0, len(r.help))
	for base := range r.help {
		helpBases = append(helpBases, base)
	}
	sort.Strings(helpBases)
	helpFor := make(map[string]string, len(helpBases))
	for _, base := range helpBases {
		pn := promName(base)
		if _, dup := helpFor[pn]; !dup {
			helpFor[pn] = r.help[base]
		}
	}
	r.mu.RUnlock()

	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := families[name]
		if f.typ != "histogram" {
			sort.Strings(f.lines) // histogram lines keep ascending-bucket order
		}
		if help := helpFor[name]; help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, promEscapeHelp(help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := io.WriteString(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// MetricsHandler serves the Prometheus rendering (the /metrics
// endpoint).  Scrapes of the Default registry tick the runtime
// collector first (rate-limited), so the runtime.* gauges are at most
// one MinInterval stale — the scraper is the sampling clock, matching
// the SLO evaluator's pull-driven design.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		r.maybeSampleRuntime()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// JSONHandler serves the JSON snapshot (the /metrics.json endpoint).
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		r.maybeSampleRuntime()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
}

// maybeSampleRuntime refreshes the Default registry's runtime.* gauges
// on scrape; non-Default registries (tests) stay untouched so their
// name sets remain exactly what the test created.
func (r *Registry) maybeSampleRuntime() {
	if r == Default {
		DefaultRuntime().MaybeSample(time.Now())
	}
}
