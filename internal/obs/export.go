package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Export formats.  One registry snapshot serves two consumers:
//
//   - WriteJSON: an expvar-style JSON document (-metrics-out, the
//     /metrics.json endpoint) — the machine-readable run record the
//     BENCH trajectory and perf PRs diff against;
//   - WritePrometheus: the Prometheus text exposition format
//     (/metrics) for scraping long-lived runs.
//
// Both renderings are deterministic (sorted names) so they can be
// golden-tested and diffed across runs.

// BucketCount is one histogram bucket in a snapshot.  LE is the upper
// bound rendered as a string ("0.005", "+Inf") because JSON has no
// encoding for infinity; Count is the non-cumulative bucket count.
type BucketCount struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// HistogramSnapshot is a histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Buckets []BucketCount `json:"buckets"`
}

// SpanSnapshot is a span path's aggregate at snapshot time.
type SpanSnapshot struct {
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
}

// Snapshot is a point-in-time copy of a registry, shaped for JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Spans      map[string]SpanSnapshot      `json:"spans"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := &Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
		Spans:      make(map[string]SpanSnapshot, len(r.spans)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		for i := range h.buckets {
			le := "+Inf"
			if i < len(h.bounds) {
				le = formatFloat(h.bounds[i])
			}
			hs.Buckets = append(hs.Buckets, BucketCount{LE: le, Count: h.buckets[i].Load()})
		}
		s.Histograms[name] = hs
	}
	for path, sp := range r.spans {
		s.Spans[path] = SpanSnapshot{
			Count:        sp.Count(),
			TotalSeconds: sp.Total().Seconds(),
			MaxSeconds:   sp.Max().Seconds(),
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON (keys sorted by
// encoding/json's map ordering, so output is deterministic).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// splitLabels separates a Labeled metric name into its base and label
// suffix: `a.b{shard="3"}` → ("a.b", `shard="3"`).
func splitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// promName sanitizes a dotted metric base into a legal Prometheus metric
// name: every rune outside [a-zA-Z0-9_:] becomes '_'.
func promName(base string) string {
	var b strings.Builder
	for i, r := range base {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// promLine renders one exposition line: name, optional label body,
// value.
func promLine(name, labels, value string) string {
	if labels != "" {
		name += "{" + labels + "}"
	}
	return name + " " + value + "\n"
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4).  Labeled series (see Labeled) group with their
// unlabeled base under a single metric family; spans export as the
// span_count / span_seconds_total / span_seconds_max families labeled by
// span path.  Output is fully sorted and deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()

	type family struct {
		typ   string
		lines []string // one rendered exposition line each, sorted before output
	}
	families := map[string]*family{}
	add := func(name, typ, line string) {
		f := families[name]
		if f == nil {
			f = &family{typ: typ}
			families[name] = f
		}
		f.lines = append(f.lines, line)
	}

	for name, v := range snap.Counters {
		base, labels := splitLabels(name)
		pn := promName(base)
		add(pn, "counter", promLine(pn, labels, strconv.FormatInt(v, 10)))
	}
	for name, v := range snap.Gauges {
		base, labels := splitLabels(name)
		pn := promName(base)
		add(pn, "gauge", promLine(pn, labels, strconv.FormatInt(v, 10)))
	}
	for name, h := range snap.Histograms {
		base, labels := splitLabels(name)
		pn := promName(base)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			le := `le="` + b.LE + `"`
			if labels != "" {
				le = labels + "," + le
			}
			add(pn, "histogram", promLine(pn+"_bucket", le, strconv.FormatInt(cum, 10)))
		}
		add(pn, "histogram", promLine(pn+"_sum", labels, formatFloat(h.Sum)))
		add(pn, "histogram", promLine(pn+"_count", labels, strconv.FormatInt(h.Count, 10)))
	}
	for path, sp := range snap.Spans {
		label := fmt.Sprintf("span=%q", path)
		add("span_count", "counter", promLine("span_count", label, strconv.FormatInt(sp.Count, 10)))
		add("span_seconds_total", "counter", promLine("span_seconds_total", label, formatFloat(sp.TotalSeconds)))
		add("span_seconds_max", "gauge", promLine("span_seconds_max", label, formatFloat(sp.MaxSeconds)))
	}

	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := families[name]
		if f.typ != "histogram" {
			sort.Strings(f.lines) // histogram lines keep ascending-bucket order
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := io.WriteString(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// MetricsHandler serves the Prometheus rendering (the /metrics
// endpoint).
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// JSONHandler serves the JSON snapshot (the /metrics.json endpoint).
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
}
