package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	runtimepprof "runtime/pprof"
	"runtime/trace"
	"time"
)

// Profiling hooks.  StartProfiles turns the standard Go profile triple
// (-cpuprofile / -memprofile / -trace) on for the life of a run;
// ServeDebug exposes live pprof plus the metrics endpoints for
// long-running generations that should be inspected while in flight.

// StartProfiles begins CPU profiling and execution tracing and arranges
// a heap profile at stop time.  Any argument may be empty to skip that
// profile.  The returned stop function ends profiling, writes the heap
// profile (after a GC, so it reflects live memory) and closes the
// files; call it exactly once, and only after all profiled work is
// done.
func StartProfiles(cpuPath, memPath, tracePath string) (stop func() error, err error) {
	var cpuF, traceF *os.File
	cleanup := func() {
		if cpuF != nil {
			runtimepprof.StopCPUProfile()
			cpuF.Close()
		}
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
	}
	if cpuPath != "" {
		if cpuF, err = os.Create(cpuPath); err != nil {
			return nil, fmt.Errorf("obs: -cpuprofile: %w", err)
		}
		if err = runtimepprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("obs: -cpuprofile: %w", err)
		}
	}
	if tracePath != "" {
		if traceF, err = os.Create(tracePath); err != nil {
			cleanup()
			return nil, fmt.Errorf("obs: -trace: %w", err)
		}
		if err = trace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			cleanup()
			return nil, fmt.Errorf("obs: -trace: %w", err)
		}
	}
	return func() error {
		var firstErr error
		if cpuF != nil {
			runtimepprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if traceF != nil {
			trace.Stop()
			if err := traceF.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("obs: -memprofile: %w", err)
				}
			} else {
				runtime.GC() // profile live objects, not garbage
				if err := runtimepprof.WriteHeapProfile(f); err != nil && firstErr == nil {
					firstErr = fmt.Errorf("obs: -memprofile: %w", err)
				}
				if err := f.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		return firstErr
	}, nil
}

// DebugServer is the live-inspection HTTP server started by ServeDebug.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug serves live observability endpoints on addr (":0" picks a
// free port; see Addr):
//
//	/metrics               Prometheus text format
//	/metrics.json          JSON snapshot (the -metrics-out document)
//	/debug/flightrecorder  flight-recorder dump (logfmt events + metrics)
//	/debug/pprof/          net/http/pprof index (profile, heap, trace, ...)
//
// The server runs until Close; serving errors after Close are ignored.
func ServeDebug(addr string, r *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: -debug-addr: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.MetricsHandler())
	mux.Handle("/metrics.json", r.JSONHandler())
	mux.Handle("/debug/flightrecorder", FlightHandler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound address ("127.0.0.1:43512"), useful with ":0".
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately.
func (s *DebugServer) Close() error { return s.srv.Close() }
