package obs

import (
	"runtime/metrics"
	"sync"
	"time"
)

// RuntimeCollector samples the Go runtime (via runtime/metrics) into
// runtime.* gauges on a Registry, so the exported /metrics and
// /metrics.json views answer "why is this replica slow" questions — GC
// pressure, scheduler latency, heap growth — next to the service's own
// counters:
//
//	runtime.heap_bytes           live heap (in-use object bytes)
//	runtime.live_objects         live heap object count
//	runtime.goroutines           current goroutine count
//	runtime.gc_cycles            completed GC cycles
//	runtime.gc_pause_p99_us      p99 GC stop-the-world pause over the
//	                             window since the previous sample (µs)
//	runtime.sched_latency_p99_us p99 time runnable goroutines waited
//	                             for a thread, same windowing (µs)
//	runtime.gc_cpu_permille      share of CPU spent in GC since the
//	                             previous sample, ×1000
//
// Sampling is pull-driven like SLO.MaybeTick: MaybeSample is invoked
// from the scrape paths (the /metrics handlers, the serve readiness
// flow, the progress reporter) and rate-limited to MinInterval, so an
// idle process pays nothing and no goroutine runs unless Start is
// asked for one (-runtime-sample, for generation runs that want steady
// cadence without a scraper).  The histogram-derived gauges are
// windowed deltas between consecutive samples — "pauses lately", not
// "pauses since process start" — which is what a dashboard watching a
// long run needs.
//
// Cost contract (DESIGN.md §6a): one metrics.Read over a fixed,
// preallocated sample set per sample — a handful of microseconds, no
// stop-the-world, two small histogram-count copies — and at most one
// sample per MinInterval no matter how many scrapers poll.
type RuntimeCollector struct {
	reg *Registry
	opt RuntimeOptions

	gHeapBytes   *Gauge
	gLiveObjects *Gauge
	gGoroutines  *Gauge
	gGCCycles    *Gauge
	gGCPauseP99  *Gauge
	gSchedP99    *Gauge
	gGCPermille  *Gauge

	mu      sync.Mutex
	samples []metrics.Sample // fixed descriptor set, reused every read
	// previous cumulative state for the windowed (delta) gauges
	prevPause, prevSched histState
	prevGCCPU, prevCPU   float64
	havePrev             bool
	last                 time.Time
}

// histState is a copy of one Float64Histogram's cumulative counts; the
// bucket boundaries are stable for the process lifetime so only counts
// are kept.
type histState struct {
	counts  []uint64
	buckets []float64
}

// RuntimeOptions configures a collector; zero values select defaults.
type RuntimeOptions struct {
	// MinInterval rate-limits MaybeSample (default 1s).
	MinInterval time.Duration
}

func (o RuntimeOptions) withDefaults() RuntimeOptions {
	if o.MinInterval <= 0 {
		o.MinInterval = time.Second
	}
	return o
}

// The fixed descriptor set, in the order the samples slice is built.
// Names missing from the running Go version read as KindBad and are
// skipped, so the collector degrades instead of panicking on older
// runtimes.
const (
	rmHeapBytes   = "/memory/classes/heap/objects:bytes"
	rmLiveObjects = "/gc/heap/objects:objects"
	rmGoroutines  = "/sched/goroutines:goroutines"
	rmGCCycles    = "/gc/cycles/total:gc-cycles"
	rmGCPauses    = "/gc/pauses:seconds"
	rmSchedLat    = "/sched/latencies:seconds"
	rmGCCPU       = "/cpu/classes/gc/total:cpu-seconds"
	rmTotalCPU    = "/cpu/classes/total:cpu-seconds"

	rmAllocBytes   = "/gc/heap/allocs:bytes"
	rmAllocObjects = "/gc/heap/allocs:objects"
)

var runtimeSampleNames = []string{
	rmHeapBytes, rmLiveObjects, rmGoroutines, rmGCCycles,
	rmGCPauses, rmSchedLat, rmGCCPU, rmTotalCPU,
}

// NewRuntimeCollector builds a collector publishing on reg (nil selects
// Default).  The gauges are registered eagerly so the exported name set
// is deterministic from the first scrape.
func NewRuntimeCollector(reg *Registry, opt RuntimeOptions) *RuntimeCollector {
	if reg == nil {
		reg = Default
	}
	c := &RuntimeCollector{
		reg: reg,
		opt: opt.withDefaults(),

		gHeapBytes:   reg.Gauge("runtime.heap_bytes"),
		gLiveObjects: reg.Gauge("runtime.live_objects"),
		gGoroutines:  reg.Gauge("runtime.goroutines"),
		gGCCycles:    reg.Gauge("runtime.gc_cycles"),
		gGCPauseP99:  reg.Gauge("runtime.gc_pause_p99_us"),
		gSchedP99:    reg.Gauge("runtime.sched_latency_p99_us"),
		gGCPermille:  reg.Gauge("runtime.gc_cpu_permille"),
	}
	reg.SetHelp("runtime.heap_bytes", "Live heap bytes (in-use objects), sampled from runtime/metrics.")
	reg.SetHelp("runtime.gc_pause_p99_us", "p99 GC stop-the-world pause in microseconds over the last sample window.")
	reg.SetHelp("runtime.sched_latency_p99_us", "p99 scheduler latency in microseconds over the last sample window.")
	reg.SetHelp("runtime.gc_cpu_permille", "Share of CPU spent in GC over the last sample window, x1000.")
	c.samples = make([]metrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		c.samples[i].Name = name
	}
	return c
}

// defaultRuntime is the lazily-built collector over Default that the
// scrape paths tick; lazy so that registries in tests that never scrape
// runtime stats do not grow runtime.* names as an import side effect.
var (
	defaultRuntimeOnce sync.Once
	defaultRuntime     *RuntimeCollector
)

// DefaultRuntime returns the process-wide collector over the Default
// registry, building it on first use.
func DefaultRuntime() *RuntimeCollector {
	defaultRuntimeOnce.Do(func() {
		defaultRuntime = NewRuntimeCollector(Default, RuntimeOptions{})
	})
	return defaultRuntime
}

// MaybeSample samples at most once per MinInterval: calls landing
// closer to the previous sample return immediately.  This is the hook
// the scrape handlers call — the scraper IS the clock.
func (c *RuntimeCollector) MaybeSample(now time.Time) {
	c.mu.Lock()
	if !c.last.IsZero() && now.Sub(c.last) < c.opt.MinInterval {
		c.mu.Unlock()
		return
	}
	c.sampleLocked(now)
	c.mu.Unlock()
}

// Sample reads the runtime unconditionally and publishes the gauges.
func (c *RuntimeCollector) Sample(now time.Time) {
	c.mu.Lock()
	c.sampleLocked(now)
	c.mu.Unlock()
}

// HeapBytes samples (rate-limited) and returns the live-heap gauge —
// the progress reporter's per-tick heap readout.
func (c *RuntimeCollector) HeapBytes(now time.Time) int64 {
	c.MaybeSample(now)
	return c.gHeapBytes.Value()
}

func (c *RuntimeCollector) sampleLocked(now time.Time) {
	c.last = now
	metrics.Read(c.samples)
	var curPause, curSched histState
	var gcCPU, totalCPU float64
	for i := range c.samples {
		s := &c.samples[i]
		switch s.Name {
		case rmHeapBytes:
			if v, ok := sampleUint(s); ok {
				c.gHeapBytes.Set(v)
			}
		case rmLiveObjects:
			if v, ok := sampleUint(s); ok {
				c.gLiveObjects.Set(v)
			}
		case rmGoroutines:
			if v, ok := sampleUint(s); ok {
				c.gGoroutines.Set(v)
			}
		case rmGCCycles:
			if v, ok := sampleUint(s); ok {
				c.gGCCycles.Set(v)
			}
		case rmGCPauses:
			curPause = copyHist(s)
		case rmSchedLat:
			curSched = copyHist(s)
		case rmGCCPU:
			if s.Value.Kind() == metrics.KindFloat64 {
				gcCPU = s.Value.Float64()
			}
		case rmTotalCPU:
			if s.Value.Kind() == metrics.KindFloat64 {
				totalCPU = s.Value.Float64()
			}
		}
	}

	// Windowed p99s: nearest-rank over the count delta since the
	// previous sample.  The first sample has no baseline and reports the
	// cumulative distribution (everything since process start).
	var prevPause, prevSched histState
	if c.havePrev {
		prevPause, prevSched = c.prevPause, c.prevSched
	}
	c.gGCPauseP99.Set(histP99Micros(curPause, prevPause))
	c.gSchedP99.Set(histP99Micros(curSched, prevSched))

	// GC CPU share over the window; cumulative on the first sample.
	dGC, dTotal := gcCPU, totalCPU
	if c.havePrev {
		dGC -= c.prevGCCPU
		dTotal -= c.prevCPU
	}
	if dTotal > 0 && dGC >= 0 {
		c.gGCPermille.Set(int64(dGC / dTotal * 1000))
	}

	c.prevPause, c.prevSched = curPause, curSched
	c.prevGCCPU, c.prevCPU = gcCPU, totalCPU
	c.havePrev = true

	// Periodic metric snapshot into the flight ring: a post-mortem dump
	// shows the heap/goroutine trajectory leading up to the event.
	Flight.Record(FlightDebug, "snapshot", "runtime sample",
		c.gHeapBytes.Value(), c.gGoroutines.Value())
}

// sampleUint extracts an integer-valued sample; false for KindBad
// (metric absent in this Go version).
func sampleUint(s *metrics.Sample) (int64, bool) {
	if s.Value.Kind() != metrics.KindUint64 {
		return 0, false
	}
	return int64(s.Value.Uint64()), true
}

// copyHist snapshots a Float64Histogram's counts.  The copy is owned by
// the collector (metrics.Read reuses the returned histogram's storage on
// the next call), so it cannot alias the sample.
func copyHist(s *metrics.Sample) histState {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return histState{}
	}
	h := s.Value.Float64Histogram()
	if h == nil {
		return histState{}
	}
	st := histState{buckets: h.Buckets, counts: make([]uint64, len(h.Counts))}
	copy(st.counts, h.Counts)
	return st
}

// histP99Micros computes the nearest-rank p99 (in whole microseconds)
// over the delta between two cumulative runtime/metrics histograms.
// Bucket boundaries are [Buckets[i], Buckets[i+1]); the reported value
// is the bucket's upper bound, matching the SLO evaluator's quantized
// convention.  An empty window reports zero.
func histP99Micros(cur, prev histState) int64 {
	if len(cur.counts) == 0 {
		return 0
	}
	var total uint64
	deltas := make([]uint64, len(cur.counts))
	for i, c := range cur.counts {
		d := c
		if i < len(prev.counts) && prev.counts[i] <= c {
			d = c - prev.counts[i]
		}
		deltas[i] = d
		total += d
	}
	if total == 0 {
		return 0
	}
	rank := (total*99 + 99) / 100 // ceil(0.99 * total)
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, d := range deltas {
		cum += d
		if cum >= rank {
			// Upper bound of bucket i is Buckets[i+1]; the final bucket's
			// bound is +Inf — report the last finite boundary instead.
			ub := 0.0
			switch {
			case i+1 < len(cur.buckets) && !isInf(cur.buckets[i+1]):
				ub = cur.buckets[i+1]
			case len(cur.buckets) > 0:
				for j := len(cur.buckets) - 1; j >= 0; j-- {
					if !isInf(cur.buckets[j]) {
						ub = cur.buckets[j]
						break
					}
				}
			}
			return int64(ub * 1e6)
		}
	}
	return 0
}

func isInf(v float64) bool { return v > 1e308 || v < -1e308 }

// Start launches a fixed-cadence sampling goroutine (the -runtime-sample
// flag) and returns a stop function.  Intervals below MinInterval are
// honored as given — an explicit flag overrides the scrape rate limit.
func (c *RuntimeCollector) Start(interval time.Duration) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				c.Sample(time.Now()) // final sample so the exit snapshot is fresh
				return
			case now := <-ticker.C:
				c.Sample(now)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}

// AllocSnapshot returns the process's cumulative heap allocation totals
// (bytes, objects) from runtime/metrics.  Two snapshots bracket a job
// to yield its allocation delta — process-wide, so concurrent jobs
// bleed into each other's numbers; callers flag the result approximate.
func AllocSnapshot() (bytes, objects int64) {
	s := []metrics.Sample{{Name: rmAllocBytes}, {Name: rmAllocObjects}}
	metrics.Read(s)
	if v, ok := sampleUint(&s[0]); ok {
		bytes = v
	}
	if v, ok := sampleUint(&s[1]); ok {
		objects = v
	}
	return bytes, objects
}
