package obs

import (
	"context"
	"io"
	"sync"
	"testing"
	"time"
)

// httpGet is a minimal GET helper shared by the handler tests.
func httpGet(url string) ([]byte, error) {
	resp, err := httpClient.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// TestConcurrentUpdates hammers a single counter, gauge, histogram and
// span from many goroutines while snapshots are taken concurrently; run
// under -race (make race) it proves the registry's synchronization.
func TestConcurrentUpdates(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)
	r := NewRegistry()
	const workers, iters = 8, 2000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("race.counter")
			g := r.Gauge("race.gauge")
			h := r.Histogram("race.hist", 0.5)
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Max(int64(w*iters + i))
				h.Observe(float64(i) / iters)
				// Exercise get-or-create races too.
				r.Counter(Labeled("race.labeled", "w", w)).Inc()
				if i%500 == 0 {
					_, done := r.StartSpan(context.Background(), "race.span")
					done()
				}
			}
		}(w)
	}
	// Concurrent readers: snapshots and renderings while writers run.
	var readers sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = r.Snapshot()
					_ = r.WritePrometheus(io.Discard)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	snap := r.Snapshot()
	if got := snap.Counters["race.counter"]; got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := snap.Gauges["race.gauge"]; got != workers*iters-1 {
		t.Fatalf("gauge high-water = %d, want %d", got, workers*iters-1)
	}
	if got := snap.Histograms["race.hist"].Count; got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
	for w := 0; w < workers; w++ {
		if got := snap.Counters[Labeled("race.labeled", "w", w)]; got != iters {
			t.Fatalf("labeled counter %d = %d, want %d", w, got, iters)
		}
	}
}

// TestHistogramObserveVsReset races Histogram.Observe (on handles taken
// both before and after resets) against Registry.Reset and concurrent
// snapshot readers.  Run under -race (make race) it proves two things:
// the get-or-create path never hands out a torn histogram, and the
// CAS-loop float64 sum accumulation in Observe is atomic — a plain
// load/add/store would tear under this schedule and lose observations.
// The final exact-sum check is the teeth: every Observe(1.0) on the
// surviving handle must be present in its sum.
func TestHistogramObserveVsReset(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Resetter: orphans the live histogram repeatedly while writers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Reset()
				_ = r.Snapshot()
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < iters; i++ {
				// Re-resolve every iteration so observations hit both
				// soon-to-be-orphaned and freshly created histograms.
				r.Histogram("race.reset.hist", 0.5).Observe(1.0)
			}
		}()
	}
	writers.Wait()
	close(stop)
	wg.Wait()

	// Deterministic epilogue on a quiet registry: concurrent Observe on
	// one handle must accumulate an exact float64 sum (the CAS loop).
	h := r.Histogram("race.sum.hist", 0.5)
	var sum sync.WaitGroup
	for w := 0; w < workers; w++ {
		sum.Add(1)
		go func() {
			defer sum.Done()
			for i := 0; i < iters; i++ {
				h.Observe(1.0)
			}
		}()
	}
	sum.Wait()
	if got := h.Sum(); got != float64(workers*iters) {
		t.Fatalf("histogram sum = %v, want %d (torn accumulation)", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

// TestProgressConcurrentWithUpdates races the reporter against counter
// updates; meaningful under -race.
func TestProgressConcurrentWithUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race.progress.edges")
	p := &Progress{Interval: time.Millisecond, Out: io.Discard, Edges: c.Value, TotalEdges: 1 << 20}
	stopReport := p.Start()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50000; i++ {
			c.Add(16)
		}
	}()
	<-done
	stopReport()
	stopReport() // double-stop is safe
}
