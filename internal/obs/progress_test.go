package obs

import (
	"bytes"
	"net/http"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"
)

var httpClient = &http.Client{Timeout: 10 * time.Second}

// lockedBuffer lets the reporter goroutine and the test share a buffer.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestProgressReportsStructuredLines(t *testing.T) {
	r := NewRegistry()
	edges := r.Counter("test.progress.edges")
	shards := r.Counter("test.progress.shards")
	edges.Add(1000) // pre-existing count: reporter must baseline it away

	out := &lockedBuffer{}
	p := &Progress{
		Interval:    2 * time.Millisecond,
		Out:         out,
		Edges:       edges.Value,
		TotalEdges:  4000,
		ShardsDone:  shards.Value,
		TotalShards: 4,
	}
	stop := p.Start()
	edges.Add(2000)
	shards.Add(2)
	// Wait for at least one line rather than sleeping a fixed time.
	deadline := time.Now().Add(5 * time.Second)
	for out.String() == "" && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()

	got := out.String()
	if got == "" {
		t.Fatal("reporter emitted nothing")
	}
	line := got[:bytes.IndexByte([]byte(got), '\n')+1]
	re := regexp.MustCompile(`^progress elapsed=\S+ edges=(\d+) edges_per_sec=\d+ pct=([\d.]+) shards=(\d+)/4 heap_mb=[\d.]+\n$`)
	m := re.FindStringSubmatch(line)
	if m == nil {
		t.Fatalf("line %q does not match the structured format", line)
	}
	if n, _ := strconv.Atoi(m[1]); n != 2000 {
		t.Fatalf("edges field = %s, want 2000 (baseline not subtracted?)", m[1])
	}
	if pct, _ := strconv.ParseFloat(m[2], 64); pct != 50.0 {
		t.Fatalf("pct = %v, want 50", pct)
	}
	if m[3] != "2" {
		t.Fatalf("shards done = %s, want 2", m[3])
	}
}

func TestProgressFlushOnExit(t *testing.T) {
	r := NewRegistry()
	edges := r.Counter("test.flush.edges")
	shards := r.Counter("test.flush.shards")

	out := &lockedBuffer{}
	p := &Progress{
		Interval:    time.Hour, // no tick will ever fire; only the flush reports
		Out:         out,
		Edges:       edges.Value,
		TotalEdges:  500,
		ShardsDone:  shards.Value,
		TotalShards: 2,
	}
	stop := p.Start()
	edges.Add(500)
	shards.Add(2)
	stop()

	got := out.String()
	re := regexp.MustCompile(`^progress elapsed=\S+ edges=500 edges_per_sec=\d+ pct=100\.0 shards=2/2 heap_mb=[\d.]+\n$`)
	if !re.MatchString(got) {
		t.Fatalf("flush-on-exit line %q does not carry the run totals", got)
	}
	// stop is idempotent: no second line.
	stop()
	if out.String() != got {
		t.Fatal("second stop emitted another line")
	}
}

func TestProgressDisabled(t *testing.T) {
	// No interval, or no edges source: Start must return a no-op.
	for _, p := range []*Progress{
		{Interval: 0, Edges: func() int64 { return 0 }},
		{Interval: time.Millisecond},
	} {
		stop := p.Start()
		stop()
	}
}
