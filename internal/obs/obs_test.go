package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	if r.Counter("c") != c {
		t.Fatal("second lookup returned a different counter")
	}

	g := r.Gauge("g")
	g.Set(5)
	if got := g.Add(-2); got != 3 {
		t.Fatalf("gauge Add returned %d, want 3", got)
	}
	g.Max(10)
	g.Max(7) // lower: no effect
	if g.Value() != 10 {
		t.Fatalf("gauge = %d, want 10", g.Value())
	}

	h := r.Histogram("h", 1, 10)
	for _, v := range []float64{0.5, 0.7, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("hist count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 106.2; got != want {
		t.Fatalf("hist sum = %g, want %g", got, want)
	}
	for i, want := range []int64{2, 1, 1} { // le=1, le=10, +Inf
		if got := h.buckets[i].Load(); got != want {
			t.Fatalf("bucket %d = %d, want %d", i, got, want)
		}
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("seconds")
	if len(h.Bounds()) != len(DefSecondsBuckets) {
		t.Fatalf("default bounds = %v", h.Bounds())
	}
}

func TestLabeled(t *testing.T) {
	if got, want := Labeled("core.stream.edges", "shard", 3), `core.stream.edges{shard="3"}`; got != want {
		t.Fatalf("Labeled = %q, want %q", got, want)
	}
	base, labels := splitLabels(`a.b{shard="3"}`)
	if base != "a.b" || labels != `shard="3"` {
		t.Fatalf("splitLabels = %q, %q", base, labels)
	}
	if base, labels := splitLabels("plain"); base != "plain" || labels != "" {
		t.Fatalf("splitLabels(plain) = %q, %q", base, labels)
	}
}

func TestSpanNestingAndGate(t *testing.T) {
	SetEnabled(false)
	ctx, done := Span(context.Background(), "off")
	done()
	if ctx != context.Background() {
		t.Fatal("disabled Span should return the context unchanged")
	}

	SetEnabled(true)
	defer SetEnabled(false)
	r := NewRegistry()
	ctx, outer := r.StartSpan(context.Background(), "outer")
	_, inner := r.StartSpan(ctx, "inner")
	time.Sleep(time.Millisecond)
	inner()
	outer()

	snap := r.Snapshot()
	if _, ok := snap.Spans["outer"]; !ok {
		t.Fatalf("missing outer span; have %v", snap.Spans)
	}
	nested, ok := snap.Spans["outer/inner"]
	if !ok {
		t.Fatalf("missing nested span path; have %v", snap.Spans)
	}
	if nested.Count != 1 || nested.TotalSeconds <= 0 || nested.MaxSeconds <= 0 {
		t.Fatalf("nested span stats = %+v", nested)
	}
}

func TestTimed(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)
	Default.Reset()
	stop := Timed("unit.test.timed")
	stop()
	if got := Default.Snapshot().Spans["unit.test.timed"].Count; got != 1 {
		t.Fatalf("timed span count = %d, want 1", got)
	}
}

func TestObserveSpanDeterministic(t *testing.T) {
	r := NewRegistry()
	r.ObserveSpan("s", 250*time.Millisecond)
	r.ObserveSpan("s", 750*time.Millisecond)
	snap := r.Snapshot().Spans["s"]
	if snap.Count != 2 || snap.TotalSeconds != 1.0 || snap.MaxSeconds != 0.75 {
		t.Fatalf("span snapshot = %+v", snap)
	}
}

func TestEnabledToggle(t *testing.T) {
	SetEnabled(false)
	if Enabled() {
		t.Fatal("expected disabled")
	}
	if stop := Timed("x"); stop == nil {
		t.Fatal("Timed must return a callable no-op when disabled")
	}
	SetEnabled(true)
	if !Enabled() {
		t.Fatal("expected enabled")
	}
	SetEnabled(false)
}

func TestPromNameSanitizes(t *testing.T) {
	cases := map[string]string{
		"core.stream.edges":   "core_stream_edges",
		"exec.pool.active":    "exec_pool_active",
		"9lives":              "_9lives",
		"with-dash and space": "with_dash_and_space",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
	if strings.ContainsAny(promName("a{b}=c"), "{}=") {
		t.Fatal("promName left illegal runes")
	}
}
