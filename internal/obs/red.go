package obs

import (
	"sync"
	"sync/atomic"
)

// RED metrics — Requests, Errors, Duration — are the service-side
// counterpart of the generator's per-shard counters: one counter pair
// plus one latency histogram (and a bytes counter) per route, published
// as labeled series under a shared base name so the Prometheus
// exposition groups them into per-family tables
// (`serve.http.requests{route="truth"}`, …).
//
// The handle table uses the same copy-on-write trick as the per-shard
// counter table in internal/core: the hot path is one atomic pointer
// load plus a read-only map lookup, and table growth (new routes)
// copies the map under a mutex.  Services pre-resolve their full route
// set at startup, so steady-state request handling never takes the
// slow path.

// REDRoute is the pre-resolved series bundle for one route.  Handles
// are plain registry pointers: resolve once, observe forever.
type REDRoute struct {
	Requests *Counter   // every request on the route
	Errors   *Counter   // 5xx responses (incl. recovered panics)
	Seconds  *Histogram // request wall time
	Bytes    *Counter   // response body bytes written
}

// Observe records one finished request: status decides whether the
// error counter advances (5xx only — 4xx is the client's problem, not
// an SLO burn).
func (rt *REDRoute) Observe(status int, seconds float64, bytes int64) {
	rt.Requests.Inc()
	if status >= 500 {
		rt.Errors.Inc()
	}
	rt.Seconds.Observe(seconds)
	if bytes > 0 {
		rt.Bytes.Add(bytes)
	}
}

// RED resolves per-route series bundles under one dotted base name
// ("serve.http" → serve.http.requests / .errors / .seconds / .bytes,
// each labeled {route="…"}).
type RED struct {
	reg    *Registry
	base   string
	bounds []float64
	tab    atomic.Pointer[map[string]*REDRoute]
	mu     sync.Mutex // serializes table growth
}

// NewRED returns a RED resolver publishing on reg (nil selects Default)
// under base; bounds configure the latency histograms (empty selects
// DefSecondsBuckets).
func NewRED(reg *Registry, base string, bounds ...float64) *RED {
	if reg == nil {
		reg = Default
	}
	r := &RED{reg: reg, base: base, bounds: bounds}
	empty := map[string]*REDRoute{}
	r.tab.Store(&empty)
	return r
}

// Route returns the series bundle for route, creating and caching it on
// first use.  The fast path is lock-free: one atomic load and a map
// read.
func (r *RED) Route(route string) *REDRoute {
	if rt := (*r.tab.Load())[route]; rt != nil {
		return rt
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := *r.tab.Load()
	if rt := cur[route]; rt != nil {
		return rt
	}
	rt := &REDRoute{
		Requests: r.reg.Counter(Labeled(r.base+".requests", "route", route)),
		Errors:   r.reg.Counter(Labeled(r.base+".errors", "route", route)),
		Seconds:  r.reg.Histogram(Labeled(r.base+".seconds", "route", route), r.bounds...),
		Bytes:    r.reg.Counter(Labeled(r.base+".bytes", "route", route)),
	}
	next := make(map[string]*REDRoute, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[route] = rt
	r.tab.Store(&next)
	return rt
}
