package obs

import (
	"flag"
	"fmt"
	"os"
	"time"
)

// Flags is the standard observability flag bundle shared by the
// kronbip and experiments CLIs.  Register it on a subcommand's FlagSet,
// then bracket the work with Start/stop:
//
//	obsFlags := obs.RegisterFlags(fs)
//	fs.Parse(args)
//	stop, err := obsFlags.Start()
//	if err != nil { return err }
//	defer stop()
//
// Setting any flag enables instrumentation for the run (SetEnabled);
// with none set, Start is a no-op and the hot paths keep their
// uninstrumented code paths.
type Flags struct {
	Progress      time.Duration
	MetricsOut    string
	CPUProfile    string
	MemProfile    string
	Trace         string
	DebugAddr     string
	RuntimeSample time.Duration
}

// RegisterFlags binds the observability flags onto fs and returns the
// destination struct (populated after fs.Parse).
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.DurationVar(&f.Progress, "progress", 0, "emit a structured progress line at this interval during generation (0 = off)")
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write a final JSON metrics snapshot to this file")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	fs.StringVar(&f.Trace, "trace", "", "write a Go runtime execution trace to this file (scheduler/GC detail for `go tool trace`; for an application-level shard/rank timeline see -timeline-out)")
	fs.StringVar(&f.DebugAddr, "debug-addr", "", "serve /metrics, /metrics.json and /debug/pprof on this address while running")
	fs.DurationVar(&f.RuntimeSample, "runtime-sample", 0, "sample Go runtime stats (heap, GC pauses, scheduler latency) into the runtime.* gauges at this interval (0 = only on scrape)")
	return f
}

// Active reports whether any observability flag was set.
func (f *Flags) Active() bool {
	return f.Progress > 0 || f.MetricsOut != "" || f.CPUProfile != "" ||
		f.MemProfile != "" || f.Trace != "" || f.DebugAddr != "" ||
		f.RuntimeSample > 0
}

// Start enables instrumentation and starts every facility the flags ask
// for: profiles, the debug server, and (at stop time) the -metrics-out
// snapshot of the Default registry.  The returned stop function is safe
// to call exactly once and returns the first teardown error; when no
// flag is set both Start and stop are no-ops.
func (f *Flags) Start() (stop func() error, err error) {
	if !f.Active() {
		return func() error { return nil }, nil
	}
	SetEnabled(true)
	stopProf, err := StartProfiles(f.CPUProfile, f.MemProfile, f.Trace)
	if err != nil {
		SetEnabled(false)
		return nil, err
	}
	var srv *DebugServer
	if f.DebugAddr != "" {
		if srv, err = ServeDebug(f.DebugAddr, Default); err != nil {
			_ = stopProf()
			SetEnabled(false)
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "debug server listening on http://%s (/metrics, /metrics.json, /debug/pprof)\n", srv.Addr())
	}
	stopRuntime := DefaultRuntime().Start(f.RuntimeSample)
	return func() error {
		stopRuntime()
		firstErr := stopProf()
		if srv != nil {
			if err := srv.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if f.MetricsOut != "" {
			if err := writeSnapshotFile(f.MetricsOut); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		SetEnabled(false)
		return firstErr
	}, nil
}

// writeSnapshotFile writes the Default registry's JSON snapshot, with
// the runtime.* gauges refreshed so the final run record carries real
// heap/GC numbers rather than whatever the last scrape left behind.
func writeSnapshotFile(path string) error {
	DefaultRuntime().Sample(time.Now())
	out, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: -metrics-out: %w", err)
	}
	if err := Default.WriteJSON(out); err != nil {
		out.Close()
		return fmt.Errorf("obs: -metrics-out: %w", err)
	}
	return out.Close()
}
