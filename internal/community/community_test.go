package community

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kronbip/internal/core"
	"kronbip/internal/gen"
	"kronbip/internal/graph"
)

// plantedFactor builds a bipartite graph with a dense planted block on the
// first du×dw vertices plus sparse background edges.
func plantedFactor(nu, nw, du, dw int, pBg float64, seed int64) *graph.Bipartite {
	rng := rand.New(rand.NewSource(seed))
	var pairs [][2]int
	for u := 0; u < du; u++ {
		for w := 0; w < dw; w++ {
			if rng.Float64() < 0.9 {
				pairs = append(pairs, [2]int{u, w})
			}
		}
	}
	for u := 0; u < nu; u++ {
		for w := 0; w < nw; w++ {
			if (u >= du || w >= dw) && rng.Float64() < pBg {
				pairs = append(pairs, [2]int{u, w})
			}
		}
	}
	b, err := graph.NewBipartite(nu, nw, pairs)
	if err != nil {
		panic(err)
	}
	return b
}

// exactCounts computes m_in/m_out of a vertex set on an explicit graph.
func exactCounts(g *graph.Graph, members map[int]bool) (in, out int64) {
	g.EachEdge(func(u, v int) bool {
		switch {
		case members[u] && members[v]:
			in++
		case members[u] != members[v]:
			out++
		}
		return true
	})
	return in, out
}

func TestNewSetValidation(t *testing.T) {
	b := gen.CompleteBipartite(3, 3)
	if _, err := NewSet(b, []int{0, 99}); err == nil {
		t.Fatal("NewSet accepted out-of-range vertex")
	}
	if _, err := NewSet(b, []int{0, 0}); err == nil {
		t.Fatal("NewSet accepted duplicate vertex")
	}
	s, err := NewSet(b, []int{0, 1, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.R) != 2 || len(s.T) != 2 {
		t.Fatalf("split R/T sizes %d/%d, want 2/2", len(s.R), len(s.T))
	}
	if !s.Contains(3) || s.Contains(5) {
		t.Fatal("Contains wrong")
	}
	if s.Size() != 4 {
		t.Fatal("Size wrong")
	}
}

func TestSetEdgeCountsAgainstExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := plantedFactor(6, 7, 3, 3, 0.3, seed)
		var members []int
		inSet := map[int]bool{}
		for v := 0; v < b.N(); v++ {
			if rng.Float64() < 0.5 {
				members = append(members, v)
				inSet[v] = true
			}
		}
		s, err := NewSet(b, members)
		if err != nil {
			return false
		}
		in, out := exactCounts(b.Graph, inSet)
		return s.InternalEdges() == in && s.ExternalEdges() == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDensitiesKnown(t *testing.T) {
	b := gen.CompleteBipartite(3, 4)
	// Full biclique community: ρ_in = 1.
	s, _ := NewSet(b, []int{0, 1, 2, 3, 4, 5, 6})
	if s.InternalDensity() != 1 {
		t.Fatalf("biclique ρ_in = %g, want 1", s.InternalDensity())
	}
	if s.ExternalEdges() != 0 {
		t.Fatal("whole-graph set has external edges")
	}
	// One-sided set has zero internal capacity.
	oneSide, _ := NewSet(b, []int{0, 1})
	if oneSide.InternalDensity() != 0 || oneSide.InternalEdges() != 0 {
		t.Fatal("one-sided set should have no internal structure")
	}
	if oneSide.ExternalEdges() != 8 {
		t.Fatalf("one-sided m_out = %d, want 8", oneSide.ExternalEdges())
	}
}

func mustProduct(t *testing.T, a *graph.Graph, b *graph.Bipartite) *core.Product {
	t.Helper()
	p, err := core.NewRelaxedWithParts(a, b, core.ModeSelfLoopFactor)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewProductCommunityValidation(t *testing.T) {
	a := plantedFactor(4, 4, 2, 2, 0.2, 1)
	b := plantedFactor(5, 5, 2, 2, 0.2, 2)
	p := mustProduct(t, a.Graph, b)
	sa, _ := NewSet(a, []int{0, 4})
	sb, _ := NewSet(b, []int{0, 5})
	if _, err := NewProductCommunity(p, sa, sb); err != nil {
		t.Fatal(err)
	}
	// Mode (i) rejected.
	p1, err := core.NewRelaxed(gen.Complete(3), b.Graph, core.ModeNonBipartiteFactor)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewProductCommunity(p1, sa, sb); err == nil {
		t.Fatal("accepted mode (i) product")
	}
	// Mismatched factor sizes rejected.
	if _, err := NewProductCommunity(p, sb, sb); err == nil {
		t.Fatal("accepted S_A on wrong factor")
	}
}

// TestTheorem7ExactCounts is the central §III-C validation: the closed-form
// m_in/m_out of the product community must match exact counting on the
// materialized product.
func TestTheorem7ExactCounts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := plantedFactor(4, 5, 2, 3, 0.3, seed)
		b := plantedFactor(5, 4, 3, 2, 0.3, seed+1)
		p, err := core.NewRelaxedWithParts(a.Graph, b, core.ModeSelfLoopFactor)
		if err != nil {
			return false
		}
		pick := func(bp *graph.Bipartite) []int {
			var m []int
			for v := 0; v < bp.N(); v++ {
				if rng.Float64() < 0.45 {
					m = append(m, v)
				}
			}
			return m
		}
		sa, err := NewSet(a, pick(a))
		if err != nil {
			return false
		}
		sb, err := NewSet(b, pick(b))
		if err != nil {
			return false
		}
		pc, err := NewProductCommunity(p, sa, sb)
		if err != nil {
			return false
		}
		g, err := p.Materialize(0)
		if err != nil {
			return false
		}
		inSet := map[int]bool{}
		for _, v := range pc.Members() {
			inSet[v] = true
		}
		in, out := exactCounts(g, inSet)
		return pc.InternalEdges() == in && pc.ExternalEdges() == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCorollary1Bound checks ρ_in(S_C) ≥ 2θ·ρA·ρB ≥ ω·ρA·ρB on planted
// dense communities.
func TestCorollary1Bound(t *testing.T) {
	a := plantedFactor(8, 8, 4, 4, 0.1, 11)
	b := plantedFactor(8, 8, 4, 4, 0.1, 12)
	p := mustProduct(t, a.Graph, b)
	members := func(du, dw, nu int) []int {
		var m []int
		for u := 0; u < du; u++ {
			m = append(m, u)
		}
		for w := 0; w < dw; w++ {
			m = append(m, nu+w)
		}
		return m
	}
	sa, _ := NewSet(a, members(4, 4, 8))
	sb, _ := NewSet(b, members(4, 4, 8))
	pc, err := NewProductCommunity(p, sa, sb)
	if err != nil {
		t.Fatal(err)
	}
	rho := pc.InternalDensity()
	omegaB, thetaB := pc.Cor1Bound()
	if rho < thetaB {
		t.Fatalf("Cor 1 (θ form) violated: ρ_in(S_C)=%g < %g", rho, thetaB)
	}
	if thetaB < omegaB {
		t.Fatalf("θ bound %g below ω bound %g", thetaB, omegaB)
	}
	if omegaB <= 0 {
		t.Fatal("ω bound degenerate on a balanced planted community")
	}
	// The planted product community is genuinely dense.
	if rho < 0.25 {
		t.Fatalf("planted product community not dense: ρ_in = %g", rho)
	}
}

// TestCorollary2Bound checks ρ_out(S_C) ≤ (1+ξA)(1+ξB)/(1−ε²)·ρ_outA·ρ_outB.
func TestCorollary2Bound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := plantedFactor(7, 7, 3, 3, 0.25, seed)
		b := plantedFactor(7, 7, 3, 3, 0.25, seed+7)
		p, err := core.NewRelaxedWithParts(a.Graph, b, core.ModeSelfLoopFactor)
		if err != nil {
			return false
		}
		// Small planted sets keep ε < 1.
		var ma, mb []int
		for v := 0; v < 3; v++ {
			if rng.Float64() < 0.8 {
				ma = append(ma, v)
			}
			mb = append(mb, v)
		}
		ma = append(ma, 7) // one W-side vertex each
		mb = append(mb, 8)
		sa, err := NewSet(a, ma)
		if err != nil {
			return false
		}
		sb, err := NewSet(b, mb)
		if err != nil {
			return false
		}
		pc, err := NewProductCommunity(p, sa, sb)
		if err != nil {
			return false
		}
		bound := pc.Cor2Bound()
		if math.IsInf(bound, 1) {
			return true // degenerate premises; bound is vacuous
		}
		return pc.ExternalDensity() <= bound+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCor2Degenerate(t *testing.T) {
	// Whole-graph set: no external edges, ξ undefined → +Inf.
	b := gen.CompleteBipartite(3, 3)
	all := []int{0, 1, 2, 3, 4, 5}
	p := mustProduct(t, b.Graph, b)
	sa, _ := NewSet(b, all)
	sb, _ := NewSet(b, all)
	pc, _ := NewProductCommunity(p, sa, sb)
	if !math.IsInf(pc.Cor2Bound(), 1) {
		t.Fatal("Cor2Bound on whole-graph set should be +Inf")
	}
}

func TestProductCommunityMembersAndParts(t *testing.T) {
	a := plantedFactor(4, 4, 2, 2, 0.2, 3)
	b := plantedFactor(4, 4, 2, 2, 0.2, 4)
	p := mustProduct(t, a.Graph, b)
	sa, _ := NewSet(a, []int{0, 1, 4})
	sb, _ := NewSet(b, []int{1, 5, 6})
	pc, _ := NewProductCommunity(p, sa, sb)
	members := pc.Members()
	if len(members) != sa.Size()*sb.Size() {
		t.Fatalf("|S_C| = %d, want %d", len(members), sa.Size()*sb.Size())
	}
	rc, tc := pc.PartSizes()
	if rc != int64(sa.Size())*int64(len(sb.R)) || tc != int64(sa.Size())*int64(len(sb.T)) {
		t.Fatal("Def 12 part sizes wrong")
	}
	// Every member's side agrees with Def 12: side of (i,k) = side_B(k).
	for _, v := range members {
		side := p.SideOf(v)
		_, k := p.PairOf(v)
		if side != b.Part.Color[k] {
			t.Fatal("product side does not follow B's coloring")
		}
	}
}
