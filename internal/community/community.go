// Package community implements the paper's §III-C: internal/external edge
// counts and densities of bipartite vertex sets (Def. 11), Kronecker
// products of sets (Def. 12), the exact product edge-count formulas
// (Thm. 7), and the density scaling laws (Cor. 1–2) showing that dense
// communities in the factors yield dense communities in the product.
package community

import (
	"fmt"
	"math"
	"sort"

	"kronbip/internal/core"
	"kronbip/internal/graph"
)

// Set is a bipartite community: a vertex subset S = R ∪ T of a bipartite
// graph with R ⊂ U and T ⊂ W (Def. 11).
type Set struct {
	B       *graph.Bipartite
	Members []int // sorted, deduplicated
	R, T    []int // members split by side, sorted

	inSet []bool // indicator 1_S
}

// NewSet validates and indexes a community.
func NewSet(b *graph.Bipartite, members []int) (*Set, error) {
	s := &Set{B: b, inSet: make([]bool, b.N())}
	seen := map[int]bool{}
	for _, v := range members {
		if v < 0 || v >= b.N() {
			return nil, fmt.Errorf("community: vertex %d out of range", v)
		}
		if seen[v] {
			return nil, fmt.Errorf("community: duplicate vertex %d", v)
		}
		seen[v] = true
		s.Members = append(s.Members, v)
		s.inSet[v] = true
		if b.Part.Color[v] == graph.SideU {
			s.R = append(s.R, v)
		} else {
			s.T = append(s.T, v)
		}
	}
	sort.Ints(s.Members)
	sort.Ints(s.R)
	sort.Ints(s.T)
	return s, nil
}

// Contains reports membership of v.
func (s *Set) Contains(v int) bool { return s.inSet[v] }

// Size returns |S|.
func (s *Set) Size() int { return len(s.Members) }

// InternalEdges returns m_in(S) = ½·1_Sᵗ A 1_S, the number of edges with
// both endpoints in S.
func (s *Set) InternalEdges() int64 {
	var m int64
	for _, v := range s.Members {
		for _, w := range s.B.Neighbors(v) {
			if s.inSet[w] {
				m++
			}
		}
	}
	return m / 2
}

// ExternalEdges returns m_out(S) = 1_Sᵗ A (1 − 1_S), the number of edges
// with exactly one endpoint in S.
func (s *Set) ExternalEdges() int64 {
	var m int64
	for _, v := range s.Members {
		for _, w := range s.B.Neighbors(v) {
			if !s.inSet[w] {
				m++
			}
		}
	}
	return m
}

// InternalDensity returns ρ_in(S) = m_in / (|R|·|T|), the fraction of
// possible internal bipartite edges present (Def. 11).  Zero-capacity sets
// (empty R or T) report 0.
func (s *Set) InternalDensity() float64 {
	cap := int64(len(s.R)) * int64(len(s.T))
	if cap == 0 {
		return 0
	}
	return float64(s.InternalEdges()) / float64(cap)
}

// ExternalDensity returns ρ_out(S) = m_out / (|R||W| + |U||T| − 2|R||T|)
// (Def. 11).  Zero-capacity boundaries report 0.
func (s *Set) ExternalDensity() float64 {
	cap := s.externalCapacity()
	if cap == 0 {
		return 0
	}
	return float64(s.ExternalEdges()) / float64(cap)
}

func (s *Set) externalCapacity() int64 {
	r, t := int64(len(s.R)), int64(len(s.T))
	u, w := int64(s.B.NU()), int64(s.B.NW())
	return r*w + u*t - 2*r*t
}

// ProductCommunity is the Kronecker product of two factor communities
// inside a mode-(ii) product C = (A+I_A) ⊗ B (Def. 12):
// S_C = supp(1_{S_A} ⊗ 1_{S_B}), with R_C = S_A ⊗ R_B and T_C = S_A ⊗ T_B.
type ProductCommunity struct {
	P      *core.Product
	SA, SB *Set
}

// NewProductCommunity validates the Thm. 7 premises: the product must be
// mode (ii) and the sets must live on its factors.
func NewProductCommunity(p *core.Product, sa, sb *Set) (*ProductCommunity, error) {
	if p.Mode() != core.ModeSelfLoopFactor {
		return nil, fmt.Errorf("community: Thm. 7 is stated for C = (A+I_A) ⊗ B (mode (ii))")
	}
	if p.Arity() != 2 {
		return nil, fmt.Errorf("community: Thm. 7 is stated for a two-factor product; this chain has arity %d", p.Arity())
	}
	if sa.B.N() != p.FactorA().N() {
		return nil, fmt.Errorf("community: S_A lives on a %d-vertex graph, factor A has %d", sa.B.N(), p.FactorA().N())
	}
	if sb.B.N() != p.FactorB().N() {
		return nil, fmt.Errorf("community: S_B lives on a %d-vertex graph, factor B has %d", sb.B.N(), p.FactorB().N())
	}
	// The density denominators of Def. 11/12 assume the product's U_C/W_C
	// split follows S_B's declared bipartition of B; for disconnected B a
	// fresh 2-coloring can disagree, so require consistency.
	for k := 0; k < p.FactorB().N(); k++ {
		if p.SideOf(p.IndexOf(0, k)) != sb.B.Part.Color[k] {
			return nil, fmt.Errorf("community: product bipartition disagrees with S_B's at B-vertex %d; construct the product with core.NewRelaxedWithParts(a, b, mode) using the same *graph.Bipartite", k)
		}
	}
	return &ProductCommunity{P: p, SA: sa, SB: sb}, nil
}

// Members returns the vertex ids of S_C, sorted.
func (pc *ProductCommunity) Members() []int {
	out := make([]int, 0, len(pc.SA.Members)*len(pc.SB.Members))
	for _, i := range pc.SA.Members {
		for _, k := range pc.SB.Members {
			out = append(out, pc.P.IndexOf(i, k))
		}
	}
	sort.Ints(out)
	return out
}

// PartSizes returns |R_C| = |S_A|·|R_B| and |T_C| = |S_A|·|T_B| (Def. 12).
func (pc *ProductCommunity) PartSizes() (rc, tc int64) {
	sa := int64(pc.SA.Size())
	return sa * int64(len(pc.SB.R)), sa * int64(len(pc.SB.T))
}

// InternalEdges returns m_in(S_C) exactly, via Thm. 7:
//
//	m_in(S_C) = 2·m_in(S_A)·m_in(S_B) + |S_A|·m_in(S_B).
func (pc *ProductCommunity) InternalEdges() int64 {
	mA, mB := pc.SA.InternalEdges(), pc.SB.InternalEdges()
	return 2*mA*mB + int64(pc.SA.Size())*mB
}

// ExternalEdges returns m_out(S_C) exactly, via Thm. 7:
//
//	m_out(S_C) = m_out(S_A)m_out(S_B) + 2m_out(S_A)m_in(S_B)
//	           + |S_A|·m_out(S_B) + 2m_in(S_A)m_out(S_B).
func (pc *ProductCommunity) ExternalEdges() int64 {
	mAi, mBi := pc.SA.InternalEdges(), pc.SB.InternalEdges()
	mAo, mBo := pc.SA.ExternalEdges(), pc.SB.ExternalEdges()
	return mAo*mBo + 2*mAo*mBi + int64(pc.SA.Size())*mBo + 2*mAi*mBo
}

// InternalDensity returns ρ_in(S_C) = m_in(S_C) / (|R_C|·|T_C|).
func (pc *ProductCommunity) InternalDensity() float64 {
	rc, tc := pc.PartSizes()
	if rc*tc == 0 {
		return 0
	}
	return float64(pc.InternalEdges()) / float64(rc*tc)
}

// ExternalDensity returns ρ_out(S_C) per Def. 11 applied to C.
func (pc *ProductCommunity) ExternalDensity() float64 {
	rc, tc := pc.PartSizes()
	nuC, nwC := pc.P.PartSizes()
	cap := rc*int64(nwC) + int64(nuC)*tc - 2*rc*tc
	if cap == 0 {
		return 0
	}
	return float64(pc.ExternalEdges()) / float64(cap)
}

// Omega returns ω = min(|R_A|, |T_A|) / |S_A| (Cor. 1).
func (pc *ProductCommunity) Omega() float64 {
	sa := float64(pc.SA.Size())
	if sa == 0 {
		return 0
	}
	return math.Min(float64(len(pc.SA.R)), float64(len(pc.SA.T))) / sa
}

// Cor1Bound returns the internal-density scaling-law lower bound.
//
// Erratum note: the paper's Cor. 1 proof writes ρ_in(S_C) with a doubled
// numerator (2m_in) while using the single-m_in Def. 11 for the factor
// densities, and so claims a constant of 2ω.  With Def. 11 applied
// consistently everywhere (as this package does) the provable chain is
//
//	ρ_in(S_C) > 2θ·ρ_in(S_A)·ρ_in(S_B) ≥ ω·ρ_in(S_A)·ρ_in(S_B),
//
// where θ = |R_A||T_A|/|S_A|² ≥ ω/2.  Both the tight 2θ bound and the
// simple ω bound are returned.
func (pc *ProductCommunity) Cor1Bound() (omegaBound, thetaBound float64) {
	rhoA, rhoB := pc.SA.InternalDensity(), pc.SB.InternalDensity()
	sa := float64(pc.SA.Size())
	if sa == 0 {
		return 0, 0
	}
	theta := float64(len(pc.SA.R)) * float64(len(pc.SA.T)) / (sa * sa)
	return pc.Omega() * rhoA * rhoB, 2 * theta * rhoA * rhoB
}

// Cor2Bound returns the external-density scaling-law upper bound
//
//	ρ_out(S_C) ≤ (1+ξ_A)(1+ξ_B) / (1−ε²) · ρ_out(S_A)·ρ_out(S_B),
//
// with ξ_S = (2m_in(S)+|S|)/m_out(S) and
// ε = max(|S_A|/|V_A|, |R_B|/|U_B|, |T_B|/|W_B|).  When a factor has no
// external edges (ξ undefined) or ε ≥ 1, the bound degenerates and +Inf is
// returned.
func (pc *ProductCommunity) Cor2Bound() float64 {
	mAo, mBo := pc.SA.ExternalEdges(), pc.SB.ExternalEdges()
	if mAo == 0 || mBo == 0 {
		return math.Inf(1)
	}
	xiA := float64(2*pc.SA.InternalEdges()+int64(pc.SA.Size())) / float64(mAo)
	xiB := float64(2*pc.SB.InternalEdges()+int64(pc.SB.Size())) / float64(mBo)
	eps := math.Max(
		float64(pc.SA.Size())/float64(pc.SA.B.N()),
		math.Max(
			float64(len(pc.SB.R))/float64(pc.SB.B.NU()),
			float64(len(pc.SB.T))/float64(pc.SB.B.NW()),
		),
	)
	if eps >= 1 {
		return math.Inf(1)
	}
	return (1 + xiA) * (1 + xiB) / (1 - eps*eps) *
		pc.SA.ExternalDensity() * pc.SB.ExternalDensity()
}
