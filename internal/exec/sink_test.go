package exec

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// recordSink remembers every edge and whether Flush ran.
type recordSink struct {
	edges   [][2]int
	flushed bool
	failAt  int // fail on the failAt-th edge (1-based); 0 = never
}

func (r *recordSink) Edge(v, w int) error {
	if r.failAt > 0 && len(r.edges)+1 == r.failAt {
		return errors.New("sink failure")
	}
	r.edges = append(r.edges, [2]int{v, w})
	return nil
}

func (r *recordSink) Flush() error {
	r.flushed = true
	return nil
}

func TestSinkFuncAndNull(t *testing.T) {
	n := 0
	s := SinkFunc(func(v, w int) error { n += v + w; return nil })
	if err := s.Edge(2, 3); err != nil || n != 5 {
		t.Fatalf("SinkFunc: err=%v n=%d", err, n)
	}
	if err := (NullSink{}).Edge(1, 2); err != nil {
		t.Fatal(err)
	}
	// Finish on a non-flusher is a no-op.
	if err := Finish(NullSink{}); err != nil {
		t.Fatal(err)
	}
}

func TestCountingSinkConcurrent(t *testing.T) {
	var c CountingSink
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Edge(j, j)
			}
		}()
	}
	wg.Wait()
	if c.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", c.Count())
	}
}

func TestMultiSink(t *testing.T) {
	a, b := &recordSink{}, &recordSink{}
	m := MultiSink{a, b}
	if err := m.Edge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := Finish(m); err != nil {
		t.Fatal(err)
	}
	if len(a.edges) != 1 || len(b.edges) != 1 || !a.flushed || !b.flushed {
		t.Fatalf("multi sink state: %+v %+v", a, b)
	}
	bad := MultiSink{&recordSink{failAt: 1}, a}
	if err := bad.Edge(3, 4); err == nil {
		t.Fatal("multi sink swallowed member error")
	}
	if len(a.edges) != 1 {
		t.Fatal("multi sink continued past failing member")
	}
}

func TestLockedSink(t *testing.T) {
	var c CountingSink
	l := NewLockedSink(&c)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				if err := l.Edge(j, j); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := Finish(l); err != nil {
		t.Fatal(err)
	}
	if c.Count() != 2000 {
		t.Fatalf("count = %d, want 2000", c.Count())
	}
}

func TestBufferedSinkDeliversInOrder(t *testing.T) {
	rec := &recordSink{}
	b := NewBufferedSink(rec)
	const total = bufferedSinkCap*2 + 17 // forces two in-flight drains plus a flush
	for i := 0; i < total; i++ {
		if err := b.Edge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if len(rec.edges) != total {
		t.Fatalf("delivered %d edges, want %d", len(rec.edges), total)
	}
	for i, e := range rec.edges {
		if e != [2]int{i, i + 1} {
			t.Fatalf("edge %d = %v, out of order", i, e)
		}
	}
	if !rec.flushed {
		t.Fatal("inner sink not flushed")
	}
}

func TestBufferedSinkPropagatesError(t *testing.T) {
	rec := &recordSink{failAt: 3}
	b := NewBufferedSink(rec)
	for i := 0; i < 5; i++ {
		if err := b.Edge(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err == nil {
		t.Fatal("flush swallowed inner error")
	}
	b.Close()
}

func TestTSVSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewTSVSink(&buf)
	for i := 0; i < 3; i++ {
		if err := s.Edge(i*10, i*10+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := Finish(s); err != nil {
		t.Fatal(err)
	}
	want := "0\t1\n10\t11\n20\t21\n"
	if buf.String() != want {
		t.Fatalf("tsv output %q, want %q", buf.String(), want)
	}
}

func TestScratchPools(t *testing.T) {
	a := GetInt64s(100)
	if len(a) != 100 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		a[i] = int64(i)
	}
	PutInt64s(a)
	b := GetInt64s(50)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("recycled slice not zeroed at %d: %d", i, v)
		}
	}
	PutInt64s(b)

	m := GetBools(10)
	m[3] = true
	PutBools(m)
	m2 := GetBools(10)
	for i, v := range m2 {
		if v {
			t.Fatalf("recycled bool slice not cleared at %d", i)
		}
	}
	PutBools(m2)

	is := GetInts(7)
	is[0] = 9
	PutInts(is)
	is2 := GetInts(7)
	if is2[0] != 0 {
		t.Fatal("recycled int slice not cleared")
	}
	PutInts(is2)

	// Growing requests after small puts still work.
	PutInts(make([]int, 1))
	big := GetInts(1 << 12)
	if len(big) != 1<<12 {
		t.Fatalf("grew to %d", len(big))
	}
	for i, v := range big {
		if v != 0 {
			t.Fatalf("big slice dirty at %d", i)
		}
	}
}

func TestBufferedOverLockedFanIn(t *testing.T) {
	// The intended sharded-stream composition: per-worker BufferedSink in
	// front of one LockedSink over a shared counter.
	var c CountingSink
	shared := NewLockedSink(&c)
	var wg sync.WaitGroup
	const workers, per = 4, 10000
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := NewBufferedSink(shared)
			for i := 0; i < per; i++ {
				if err := b.Edge(i, w); err != nil {
					errs[w] = err
					return
				}
			}
			errs[w] = b.Close()
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if c.Count() != workers*per {
		t.Fatalf("count = %d, want %d", c.Count(), workers*per)
	}
}

func ExampleCountingSink() {
	var c CountingSink
	s := MultiSink{NullSink{}, &c}
	for i := 0; i < 3; i++ {
		s.Edge(i, i+1)
	}
	fmt.Println(c.Count())
	// Output: 3
}
