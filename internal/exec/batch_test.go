package exec

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// recordBatchSink remembers every edge and the batch sizes it arrived
// in; it speaks only BatchSink plus Flush.
type recordBatchSink struct {
	edges   []Edge
	batches []int
	flushed bool
	failAt  int // fail on the batch containing the failAt-th edge (1-based); 0 = never
}

func (r *recordBatchSink) EdgeBatch(batch []Edge) error {
	if r.failAt > 0 && len(r.edges)+len(batch) >= r.failAt {
		return errors.New("batch sink failure")
	}
	r.edges = append(r.edges, batch...)
	r.batches = append(r.batches, len(batch))
	return nil
}

func (r *recordBatchSink) Edge(v, w int) error { return r.EdgeBatch([]Edge{{v, w}}) }

func (r *recordBatchSink) Flush() error {
	r.flushed = true
	return nil
}

func batchOf(n, base int) []Edge {
	b := make([]Edge, n)
	for i := range b {
		b[i] = Edge{base + i, base + i + 1}
	}
	return b
}

func TestEdgeBufPool(t *testing.T) {
	b := GetEdgeBuf()
	if len(*b) != 0 || cap(*b) < BatchLen {
		t.Fatalf("fresh buffer len=%d cap=%d, want empty with cap >= %d", len(*b), cap(*b), BatchLen)
	}
	*b = append(*b, Edge{1, 2})
	PutEdgeBuf(b)
	// Nil and undersized buffers must be rejected, not pooled.
	PutEdgeBuf(nil)
	small := make([]Edge, 0, 4)
	PutEdgeBuf(&small)
	if got := GetEdgeBuf(); len(*got) != 0 || cap(*got) < BatchLen {
		t.Fatalf("recycled buffer len=%d cap=%d, want empty with cap >= %d", len(*got), cap(*got), BatchLen)
	}
}

func TestDeliverBatchPrefersBatchSink(t *testing.T) {
	var r recordBatchSink
	if err := DeliverBatch(&r, batchOf(5, 0)); err != nil {
		t.Fatal(err)
	}
	if len(r.batches) != 1 || r.batches[0] != 5 {
		t.Fatalf("batches = %v, want one wholesale delivery of 5", r.batches)
	}
}

func TestDeliverBatchFallsBackPerEdge(t *testing.T) {
	var r recordSink // speaks only Edge
	if err := DeliverBatch(&r, batchOf(4, 10)); err != nil {
		t.Fatal(err)
	}
	want := [][2]int{{10, 11}, {11, 12}, {12, 13}, {13, 14}}
	if len(r.edges) != len(want) {
		t.Fatalf("delivered %d edges, want %d", len(r.edges), len(want))
	}
	for i, e := range want {
		if r.edges[i] != e {
			t.Fatalf("edge %d = %v, want %v (order not preserved)", i, r.edges[i], e)
		}
	}
	// Per-edge fallback stops at the first error.
	fail := recordSink{failAt: 2}
	if err := DeliverBatch(&fail, batchOf(4, 0)); err == nil {
		t.Fatal("sink error not surfaced")
	}
	if len(fail.edges) != 1 {
		t.Fatalf("delivered %d edges past the failure, want 1", len(fail.edges))
	}
}

func TestCountingSinkEdgeBatch(t *testing.T) {
	var c CountingSink
	if err := c.EdgeBatch(batchOf(7, 0)); err != nil {
		t.Fatal(err)
	}
	if err := c.Edge(1, 2); err != nil {
		t.Fatal(err)
	}
	if c.Count() != 8 {
		t.Fatalf("count = %d, want 8", c.Count())
	}
	if err := NullSink.EdgeBatch(NullSink{}, batchOf(3, 0)); err != nil {
		t.Fatal(err)
	}
}

func TestMultiSinkEdgeBatchMixedMembers(t *testing.T) {
	var batch recordBatchSink
	var perEdge recordSink
	m := MultiSink{&batch, &perEdge}
	if err := m.EdgeBatch(batchOf(6, 0)); err != nil {
		t.Fatal(err)
	}
	if len(batch.batches) != 1 || batch.batches[0] != 6 {
		t.Fatalf("batch member got %v, want one delivery of 6", batch.batches)
	}
	if len(perEdge.edges) != 6 {
		t.Fatalf("per-edge member got %d edges, want 6", len(perEdge.edges))
	}
}

func TestLockedSinkEdgeBatchConcurrent(t *testing.T) {
	var r recordBatchSink
	l := NewLockedSink(&r)
	var wg sync.WaitGroup
	const writers, perWriter = 8, 20
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				if err := l.EdgeBatch(batchOf(3, i*1000+j)); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if len(r.edges) != writers*perWriter*3 {
		t.Fatalf("recorded %d edges, want %d", len(r.edges), writers*perWriter*3)
	}
}

func TestBufferedSinkEdgeBatchChunksAndFlushes(t *testing.T) {
	var r recordBatchSink
	b := NewBufferedSink(&r)
	// A batch larger than the buffer capacity must re-emerge in
	// capacity-aligned chunks plus a flushed tail, preserving order.
	big := batchOf(bufferedSinkCap+100, 0)
	if err := b.EdgeBatch(big); err != nil {
		t.Fatal(err)
	}
	if len(r.batches) != 1 || r.batches[0] != bufferedSinkCap {
		t.Fatalf("pre-flush batches = %v, want one full buffer of %d", r.batches, bufferedSinkCap)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if len(r.edges) != len(big) {
		t.Fatalf("delivered %d edges, want %d", len(r.edges), len(big))
	}
	for i, e := range big {
		if r.edges[i] != e {
			t.Fatalf("edge %d = %v, want %v", i, r.edges[i], e)
		}
	}
	if !r.flushed {
		t.Fatal("inner sink not flushed")
	}
}

func TestTSVSinkEdgeBatchMatchesPerEdge(t *testing.T) {
	batch := batchOf(2000, 100000) // wide enough vertex IDs to cross tsvChunk
	var viaBatch, viaEdge bytes.Buffer
	tb := NewTSVSink(&viaBatch)
	if err := tb.EdgeBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := tb.Flush(); err != nil {
		t.Fatal(err)
	}
	te := NewTSVSink(&viaEdge)
	for _, e := range batch {
		if err := te.Edge(e.V, e.W); err != nil {
			t.Fatal(err)
		}
	}
	if err := te.Flush(); err != nil {
		t.Fatal(err)
	}
	if viaBatch.String() != viaEdge.String() {
		t.Fatal("batch and per-edge TSV renderings differ")
	}
	if lines := strings.Count(viaBatch.String(), "\n"); lines != len(batch) {
		t.Fatalf("%d lines, want %d", lines, len(batch))
	}
}

func TestFanInDeliversEverythingOnce(t *testing.T) {
	var r recordBatchSink
	f := NewFanIn(&r, 0)
	const shards, perShard = 6, BatchLen + 37 // forces full sends plus a partial tail
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sink := f.ForShard()
			for i := 0; i < perShard; i++ {
				if err := sink.Edge(s, i); err != nil {
					t.Error(err)
					return
				}
			}
			if err := Finish(sink); err != nil {
				t.Error(err)
			}
		}(s)
	}
	wg.Wait()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if len(r.edges) != shards*perShard {
		t.Fatalf("delivered %d edges, want %d", len(r.edges), shards*perShard)
	}
	perShardSeen := make([]int, shards)
	for _, e := range r.edges {
		// Within one shard, edges must arrive in production order.
		if e.W != perShardSeen[e.V] {
			t.Fatalf("shard %d: edge %d arrived out of order (want %d)", e.V, e.W, perShardSeen[e.V])
		}
		perShardSeen[e.V]++
	}
	if !r.flushed {
		t.Fatal("inner sink not flushed by Close")
	}
}

func TestFanInBatchProducer(t *testing.T) {
	var total CountingSink
	f := NewFanIn(&total, 0)
	sink := f.ForShard().(BatchSink)
	// Batches both smaller and larger than the pooled buffer.
	n := 0
	for _, size := range []int{10, BatchLen, 3*BatchLen + 5, 1} {
		if err := sink.EdgeBatch(batchOf(size, n)); err != nil {
			t.Fatal(err)
		}
		n += size
	}
	if err := Finish(sink.(Sink)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if total.Count() != int64(n) {
		t.Fatalf("counted %d edges, want %d", total.Count(), n)
	}
}

func TestFanInPropagatesConsumerError(t *testing.T) {
	boom := fmt.Errorf("inner sink refused")
	fail := SinkFunc(func(v, w int) error { return boom })
	f := NewFanIn(fail, 1)
	sink := f.ForShard()
	// Keep producing until the consumer's failure propagates back; the
	// bounded channel must never deadlock this loop.
	var sawErr error
	for i := 0; i < 100*BatchLen && sawErr == nil; i++ {
		sawErr = sink.Edge(i, i)
	}
	if !errors.Is(sawErr, boom) {
		t.Fatalf("producer error = %v, want %v", sawErr, boom)
	}
	if err := f.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close = %v, want %v", err, boom)
	}
}
