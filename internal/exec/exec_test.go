package exec

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestShardedRunsEveryShardOnce(t *testing.T) {
	for _, nshards := range []int{1, 2, 3, 8, 100} {
		for _, workers := range []int{0, 1, 2, 7, 200} {
			var hits = make([]atomic.Int32, nshards)
			err := ShardedN(context.Background(), nshards, workers, func(_ context.Context, s int) error {
				hits[s].Add(1)
				return nil
			})
			if err != nil {
				t.Fatalf("nshards=%d workers=%d: %v", nshards, workers, err)
			}
			for s := range hits {
				if got := hits[s].Load(); got != 1 {
					t.Fatalf("nshards=%d workers=%d: shard %d ran %d times", nshards, workers, s, got)
				}
			}
		}
	}
}

func TestShardedValidation(t *testing.T) {
	if err := Sharded(context.Background(), 0, nil); err == nil {
		t.Fatal("accepted nshards=0")
	}
	if err := Sharded(context.Background(), -3, nil); err == nil {
		t.Fatal("accepted negative nshards")
	}
	// nil context is tolerated.
	if err := Sharded(nil, 2, func(context.Context, int) error { return nil }); err != nil { //lint:ignore SA1012 deliberate
		t.Fatal(err)
	}
}

func TestShardedFirstErrorWinsAndCancelsSiblings(t *testing.T) {
	boom := errors.New("boom")
	var cancelledSiblings atomic.Int32
	err := ShardedN(context.Background(), 8, 4, func(ctx context.Context, s int) error {
		if s == 0 {
			return boom
		}
		select {
		case <-ctx.Done():
			cancelledSiblings.Add(1)
			return ctx.Err()
		case <-time.After(5 * time.Second):
			return fmt.Errorf("shard %d never saw cancellation", s)
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestShardedPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := Sharded(ctx, 4, func(context.Context, int) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("shard ran under a pre-cancelled context")
	}
}

func TestShardedDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err := Sharded(ctx, 4, func(context.Context, int) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestShardedCancelMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started sync.WaitGroup
	started.Add(1)
	var once sync.Once
	err := ShardedN(ctx, 4, 4, func(ctx context.Context, s int) error {
		once.Do(func() {
			cancel()
			started.Done()
		})
		<-ctx.Done()
		return ctx.Err()
	})
	started.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRangesCoversExactly(t *testing.T) {
	for _, n := range []int{1, 2, 10, 97, 1000} {
		for _, workers := range []int{0, 1, 3, 16, 2000} {
			covered := make([]atomic.Int32, n)
			err := Ranges(context.Background(), n, workers, func(_ context.Context, _, lo, hi int) error {
				for i := lo; i < hi; i++ {
					covered[i].Add(1)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			for i := range covered {
				if got := covered[i].Load(); got != 1 {
					t.Fatalf("n=%d workers=%d: item %d covered %d times", n, workers, i, got)
				}
			}
		}
	}
}

func TestRangesZeroAndNegative(t *testing.T) {
	if err := Ranges(context.Background(), 0, 4, nil); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	if err := Ranges(context.Background(), -1, 4, nil); err == nil {
		t.Fatal("accepted negative n")
	}
}

func TestStripePartition(t *testing.T) {
	for _, n := range []int{1, 5, 97, 1 << 20} {
		for _, workers := range []int{1, 2, 3, 7, 64} {
			prev := 0
			for w := 0; w < workers; w++ {
				lo, hi := Stripe(w, workers, n)
				if lo != prev {
					t.Fatalf("n=%d workers=%d stripe %d: lo=%d, want %d", n, workers, w, lo, prev)
				}
				if hi < lo {
					t.Fatalf("n=%d workers=%d stripe %d: hi %d < lo %d", n, workers, w, hi, lo)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d workers=%d: stripes end at %d", n, workers, prev)
			}
		}
	}
}

// TestStripeNoOverflow feeds the largest representable n: the legacy
// w*n/workers formula wraps negative here, while Stripe must stay exact.
func TestStripeNoOverflow(t *testing.T) {
	n := math.MaxInt
	workers := 3
	prev := 0
	for w := 0; w < workers; w++ {
		lo, hi := Stripe(w, workers, n)
		if lo != prev || hi < lo {
			t.Fatalf("stripe %d: [%d, %d) after %d", w, lo, hi, prev)
		}
		prev = hi
	}
	if prev != n {
		t.Fatalf("stripes of MaxInt end at %d", prev)
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(4, 10); got != 4 {
		t.Fatalf("Workers(4,10) = %d", got)
	}
	if got := Workers(100, 10); got != 10 {
		t.Fatalf("Workers(100,10) = %d", got)
	}
	if got := Workers(0, 1); got != 1 {
		t.Fatalf("Workers(0,1) = %d", got)
	}
	if got := Workers(-1, 0); got != 1 {
		t.Fatalf("Workers(-1,0) = %d", got)
	}
}

func TestPollerTripsWithinStride(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPoller(ctx, 16)
	for i := 0; i < 100; i++ {
		if p.Cancelled() {
			t.Fatal("tripped before cancellation")
		}
	}
	cancel()
	trippedAt := -1
	for i := 0; i < 32; i++ {
		if p.Cancelled() {
			trippedAt = i
			break
		}
	}
	if trippedAt < 0 {
		t.Fatal("poller never tripped within two strides of cancellation")
	}
	if !p.Cancelled() {
		t.Fatal("tripped poller must stay tripped")
	}
	if p.Err() == nil {
		t.Fatal("tripped poller has nil Err")
	}
}

func TestPollerBackgroundIsFree(t *testing.T) {
	p := NewPoller(context.Background(), 4)
	for i := 0; i < 1000; i++ {
		if p.Cancelled() {
			t.Fatal("background poller tripped")
		}
	}
}
