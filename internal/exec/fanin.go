package exec

import (
	"runtime"
	"sync/atomic"
)

// FanIn funnels a sharded stream into one consumer.  Each shard writes
// through its own ForShard producer, which fills pooled edge buffers
// and sends whole buffers over a bounded channel; a single consumer
// goroutine drains them into the inner sink and recycles the buffers.
// The channel therefore carries one send per BatchLen edges, not one
// per edge — the shape that makes many-shards-one-consumer streams
// competitive with serial generation (the BufferedSink-over-LockedSink
// alternative still pays a lock handoff per drain under contention).
//
// Edges from one shard arrive at the inner sink in shard order; edges
// from different shards interleave at buffer granularity.  The inner
// sink is only ever touched by the consumer goroutine, so it needs no
// locking of its own.
//
// Lifecycle: NewFanIn starts the consumer; hand one ForShard sink to
// each shard; after the stream ends (success or abort), call Close
// exactly once to drain, flush the inner sink and collect the first
// consumer-side error.
type FanIn struct {
	inner  Sink
	ch     chan *[]Edge
	done   chan struct{}
	failed atomic.Bool
	err    error // consumer-side first error; published via failed, read after done
}

// NewFanIn starts a fan-in into inner with the given channel depth
// (buffers in flight; depth <= 0 selects 2×GOMAXPROCS).
func NewFanIn(inner Sink, depth int) *FanIn {
	if depth <= 0 {
		depth = 2 * runtime.GOMAXPROCS(0)
	}
	f := &FanIn{inner: inner, ch: make(chan *[]Edge, depth), done: make(chan struct{})}
	go f.consume()
	return f
}

// consume is the single consumer: deliver each buffer, recycle it.
// After an inner-sink error it keeps draining (and discarding) so no
// producer can block on a full channel, and producers observe the
// failure through the atomic flag at their next send.
func (f *FanIn) consume() {
	defer close(f.done)
	for buf := range f.ch {
		if !f.failed.Load() {
			if err := DeliverBatch(f.inner, *buf); err != nil {
				f.err = err
				f.failed.Store(true)
			}
		}
		PutEdgeBuf(buf)
	}
}

// ForShard returns a producer sink for one shard.  Each producer is
// used from a single goroutine (the Sink contract); its Flush sends
// the final partial buffer, so exec.Finish at shard completion
// delivers the tail.
func (f *FanIn) ForShard() Sink {
	return &fanInShard{f: f, buf: GetEdgeBuf()}
}

// Close signals end of stream, waits for the consumer to drain every
// in-flight buffer, flushes the inner sink, and returns the first
// consumer-side error.  Call exactly once, after every producer is
// done (i.e. after the parallel stream has returned).
func (f *FanIn) Close() error {
	close(f.ch)
	<-f.done
	if f.err != nil {
		return f.err
	}
	return Finish(f.inner)
}

// fanInShard is one shard's producer: fill a pooled buffer, send it
// whole, grab a fresh one.
type fanInShard struct {
	f   *FanIn
	buf *[]Edge
}

// Edge buffers the edge, sending the buffer when it fills.
func (s *fanInShard) Edge(v, w int) error {
	*s.buf = append(*s.buf, Edge{v, w})
	if len(*s.buf) >= cap(*s.buf) {
		return s.send()
	}
	return nil
}

// EdgeBatch copies the batch into the shard's buffer in capacity-sized
// chunks.  The copy is unavoidable — buffer ownership transfers across
// the channel, while the incoming slice stays with its producer.
func (s *fanInShard) EdgeBatch(edges []Edge) error {
	for len(edges) > 0 {
		take := cap(*s.buf) - len(*s.buf)
		if take > len(edges) {
			take = len(edges)
		}
		*s.buf = append(*s.buf, edges[:take]...)
		edges = edges[take:]
		if len(*s.buf) >= cap(*s.buf) {
			if err := s.send(); err != nil {
				return err
			}
		}
	}
	return nil
}

// send transfers the full buffer to the consumer and starts a fresh
// one.  A consumer that has already failed surfaces its error here,
// aborting this shard's stream instead of queueing doomed work.
func (s *fanInShard) send() error {
	if s.f.failed.Load() {
		return s.f.err // safe: published before failed was set
	}
	full := s.buf
	s.buf = GetEdgeBuf()
	s.f.ch <- full
	return nil
}

// Flush sends the final partial buffer, if any.
func (s *fanInShard) Flush() error {
	if len(*s.buf) == 0 {
		return nil
	}
	return s.send()
}
