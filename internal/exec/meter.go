package exec

import (
	"context"
	"sync/atomic"
	"time"
)

// Meter accumulates per-run resource attribution for one logical job: the
// pool adds each shard task's busy wall-time and task count as it
// completes.  Because a shard task runs CPU-bound on a single goroutine,
// its busy wall-time is a faithful proxy for the CPU it consumed (one
// core for the duration); summed over shards this attributes pool CPU to
// the job that scheduled it without any per-goroutine runtime API —
// which Go does not expose.  Concurrent shards sum their overlapping
// intervals, so a 4-worker job burning 1s of wall clock reports ~4s of
// busy time, exactly like process CPU time.
//
// The zero Meter is ready to use.  All methods are safe for concurrent
// use; accumulation is two atomic adds per shard *task* (never per
// element), and only happens at all when instrumentation is enabled —
// an unmetered or obs-disabled run never touches it.
type Meter struct {
	busyNanos atomic.Int64
	tasks     atomic.Int64
}

// add records one completed shard task that ran for d.
func (m *Meter) add(d time.Duration) {
	m.busyNanos.Add(int64(d))
	m.tasks.Add(1)
}

// BusySeconds returns the accumulated busy time in seconds — the job's
// attributed CPU time under the one-core-per-shard model.
func (m *Meter) BusySeconds() float64 {
	return float64(m.busyNanos.Load()) / float64(time.Second)
}

// Busy returns the accumulated busy time.
func (m *Meter) Busy() time.Duration {
	return time.Duration(m.busyNanos.Load())
}

// Tasks returns the number of shard tasks accumulated so far.
func (m *Meter) Tasks() int64 {
	return m.tasks.Load()
}

// meterKey carries the Meter through a context without exporting the key.
type meterKey struct{}

// WithMeter returns a context that routes pool attribution to m: every
// ShardedN (and therefore Ranges) call made under the returned context
// adds its shard-task busy time to m while instrumentation is enabled.
func WithMeter(ctx context.Context, m *Meter) context.Context {
	if m == nil {
		return ctx
	}
	return context.WithValue(ctx, meterKey{}, m)
}

// MeterFrom returns the Meter attached by WithMeter, or nil.
func MeterFrom(ctx context.Context) *Meter {
	m, _ := ctx.Value(meterKey{}).(*Meter)
	return m
}
