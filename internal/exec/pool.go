package exec

import "sync"

// Per-worker scratch memory.  The counters and kernels allocate O(n)
// accumulator/marker slices per worker per call; under a serving workload
// those calls repeat millions of times, so the slices are recycled through
// typed sync.Pools.  Get* returns a zeroed slice of length n; Put* recycles
// it.  Never Put a slice that is still referenced elsewhere.

type slicePool[T any] struct{ p sync.Pool }

func (sp *slicePool[T]) get(n int) []T {
	if v := sp.p.Get(); v != nil {
		s := *v.(*[]T)
		if cap(s) >= n {
			s = s[:n]
			clear(s)
			return s
		}
	}
	return make([]T, n)
}

func (sp *slicePool[T]) put(s []T) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	sp.p.Put(&s)
}

var (
	int64Pool slicePool[int64]
	intPool   slicePool[int]
	boolPool  slicePool[bool]
)

// GetInt64s returns a zeroed []int64 of length n from the pool.
func GetInt64s(n int) []int64 { return int64Pool.get(n) }

// PutInt64s recycles a slice obtained from GetInt64s.
func PutInt64s(s []int64) { int64Pool.put(s) }

// GetInts returns a zeroed []int of length n from the pool.
func GetInts(n int) []int { return intPool.get(n) }

// PutInts recycles a slice obtained from GetInts.
func PutInts(s []int) { intPool.put(s) }

// GetBools returns a zeroed []bool of length n from the pool.
func GetBools(n int) []bool { return boolPool.get(n) }

// PutBools recycles a slice obtained from GetBools.
func PutBools(s []bool) { boolPool.put(s) }
