package exec

import "sync"

// Batched edge emission.  The per-edge Sink vocabulary costs one
// dynamic call (and, behind fan-in shapes, one lock acquisition or
// channel send) per product edge; at the generator's edge rates that
// dispatch dominates the arithmetic.  BatchSink is the wholesale
// alternative: producers fill pooled []Edge buffers and hand a whole
// slice downstream in one call, so per-edge costs are paid once per
// BatchLen edges.  Every composite sink in this package (counting,
// multi, locked, buffered, TSV, fan-in) speaks both vocabularies, and
// DeliverBatch bridges a batch onto a sink that speaks only Edge.

// Edge is one undirected product edge {V, W} in a batch payload.
type Edge struct{ V, W int }

// BatchSink consumes product edges a slice at a time.  The slice is
// owned by the producer and is reused after EdgeBatch returns — an
// implementation that needs the edges later must copy them.  Like
// Sink.Edge, a non-nil error aborts the stream feeding the sink, and
// implementations are used from one goroutine at a time unless
// documented otherwise.
type BatchSink interface {
	EdgeBatch(edges []Edge) error
}

// BatchLen is the canonical batch buffer capacity: big enough to
// amortize downstream calls (and channel sends) to noise, small enough
// that a buffer stays cache-resident (64 KiB of edges on 64-bit).
const BatchLen = bufferedSinkCap

// edgeBufPool recycles batch buffers across shards and streams.
var edgeBufPool = sync.Pool{
	New: func() any {
		b := make([]Edge, 0, BatchLen)
		return &b
	},
}

// GetEdgeBuf returns an empty pooled edge buffer with capacity
// BatchLen.  Return it with PutEdgeBuf when done.
func GetEdgeBuf() *[]Edge {
	return edgeBufPool.Get().(*[]Edge)
}

// PutEdgeBuf recycles a buffer obtained from GetEdgeBuf.  The caller
// must not retain the slice afterwards.
func PutEdgeBuf(b *[]Edge) {
	if b == nil || cap(*b) < BatchLen {
		return // undersized strays would poison the pool
	}
	*b = (*b)[:0]
	edgeBufPool.Put(b)
}

// DeliverBatch hands edges to s in one call when s implements
// BatchSink, falling back to per-edge delivery otherwise.  Either way
// the edges arrive in slice order and the first error aborts delivery.
func DeliverBatch(s Sink, edges []Edge) error {
	if bs, ok := s.(BatchSink); ok {
		return bs.EdgeBatch(edges)
	}
	for _, e := range edges {
		if err := s.Edge(e.V, e.W); err != nil {
			return err
		}
	}
	return nil
}
