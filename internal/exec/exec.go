// Package exec is the shared parallel execution engine for every
// generation, counting and kernel path in the repository.  The paper's
// value proposition is streaming massive products C = A ⊗ B without
// materializing them; at production scale that streaming must be
// cancellable, deadline-aware and uniform across subsystems, so the
// core generator, the butterfly counters, the GraphBLAS kernels, the
// distributed simulator and the CLI all schedule work through this one
// package instead of hand-rolled worker pools.
//
// The engine provides:
//
//   - Sharded / Ranges: bounded worker pools over deterministic work
//     partitions, with first-error propagation and cooperative
//     cancellation (a failing or cancelled shard aborts its siblings);
//   - Stripe: overflow-safe contiguous partitioning of [0, n);
//   - Poller: a cheap per-worker cancellation probe for tight loops;
//   - Sink: the common edge-consumer abstraction (counting, buffered,
//     multi-writer, locked, TSV, null) with sync.Pool-backed buffers.
//
// Cancellation contract: when the caller's context is cancelled or its
// deadline passes, every function here stops within one polling stride,
// abandons its remaining work, and returns ctx.Err().  Partial effects
// (edges already delivered to sinks, slices partially filled) are the
// caller's to discard; no work item is ever executed twice.
package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"kronbip/internal/obs"
	"kronbip/internal/obs/timeline"
)

// Pool metrics (internal/obs).  Accounting is per shard task, never per
// element, and only performed while instrumentation is enabled — the
// disabled cost is one atomic load per ShardedN call.
var (
	poolTasks   = obs.Default.Counter("exec.pool.tasks")         // shard tasks executed
	poolCancels = obs.Default.Counter("exec.pool.cancellations") // pool runs aborted by ctx
	poolActive  = obs.Default.Gauge("exec.pool.active")          // tasks running right now
	poolPeak    = obs.Default.Gauge("exec.pool.peak")            // high-water pool occupancy
)

// notePoolCancelled counts a pool run that ended in cancellation.
func notePoolCancelled(instr bool, err error) {
	if instr && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		poolCancels.Inc()
	}
}

// Sharded runs fn(ctx, shard) for every shard in [0, nshards) on a bounded
// worker pool of GOMAXPROCS goroutines.  Shards are claimed in order but
// run concurrently; each shard runs at most once.  The first non-nil error
// cancels the context passed to the remaining shards and is returned.  If
// ctx is cancelled first, Sharded returns ctx.Err().
func Sharded(ctx context.Context, nshards int, fn func(ctx context.Context, shard int) error) error {
	return ShardedN(ctx, nshards, 0, fn)
}

// ShardedN is Sharded with an explicit worker bound; workers <= 0 selects
// GOMAXPROCS.  With one worker the shards run sequentially on the calling
// goroutine (still checking ctx between shards).
func ShardedN(ctx context.Context, nshards, workers int, fn func(ctx context.Context, shard int) error) error {
	if nshards <= 0 {
		return fmt.Errorf("exec: nshards must be positive, got %d", nshards)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nshards {
		workers = nshards
	}
	instr := obs.Enabled()
	tl := timeline.Enabled()
	// Attribution: a meter attached by WithMeter receives each shard
	// task's busy wall-time.  Resolved once per run, honoured only while
	// instrumentation is on — the disabled path never reads the clock.
	var meter *Meter
	if instr {
		meter = MeterFrom(ctx)
	}
	if workers == 1 {
		for s := 0; s < nshards; s++ {
			if err := ctx.Err(); err != nil {
				notePoolCancelled(instr, err)
				return err
			}
			if instr {
				poolTasks.Inc()
				poolPeak.Max(poolActive.Add(1))
			}
			var end timeline.Done
			if tl {
				end = timeline.Begin(timeline.CatShard, "exec.pool", s)
			}
			var t0 time.Time
			if meter != nil {
				t0 = time.Now()
			}
			err := fn(ctx, s)
			if meter != nil {
				meter.add(time.Since(t0))
			}
			if end != nil {
				end(err)
			}
			if instr {
				poolActive.Add(-1)
			}
			if err != nil {
				notePoolCancelled(instr, err)
				return err
			}
		}
		return nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64 // next unclaimed shard
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1) - 1)
				if s >= nshards || wctx.Err() != nil {
					return
				}
				if instr {
					poolTasks.Inc()
					poolPeak.Max(poolActive.Add(1))
				}
				var end timeline.Done
				if tl {
					end = timeline.Begin(timeline.CatShard, "exec.pool", s)
				}
				var t0 time.Time
				if meter != nil {
					t0 = time.Now()
				}
				err := fn(wctx, s)
				if meter != nil {
					meter.add(time.Since(t0))
				}
				if end != nil {
					end(err)
				}
				if instr {
					poolActive.Add(-1)
				}
				if err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err == nil {
		err = ctx.Err()
	}
	notePoolCancelled(instr, err)
	return err
}

// Workers resolves a requested worker count against n work items: values
// <= 0 select GOMAXPROCS, and the result never exceeds n (minimum 1).
// Ranges applies it internally; callers that keep per-worker state sized
// by worker index should resolve through it too so the counts agree.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Ranges partitions [0, n) into `workers` contiguous stripes via Stripe and
// runs fn(ctx, worker, lo, hi) for each non-empty stripe on the pool.
// workers <= 0 selects GOMAXPROCS; workers above n are clamped.  Error and
// cancellation semantics are those of Sharded.
func Ranges(ctx context.Context, n, workers int, fn func(ctx context.Context, worker, lo, hi int) error) error {
	if n < 0 {
		return fmt.Errorf("exec: n must be non-negative, got %d", n)
	}
	if n == 0 {
		if ctx == nil {
			return nil
		}
		return ctx.Err()
	}
	workers = Workers(workers, n)
	return ShardedN(ctx, workers, workers, func(ctx context.Context, w int) error {
		lo, hi := Stripe(w, workers, n)
		if lo >= hi {
			return nil
		}
		return fn(ctx, w, lo, hi)
	})
}

// Stripe returns the half-open bounds [lo, hi) of stripe w of `workers`
// contiguous, disjoint, exhaustive stripes of [0, n).  The first n%workers
// stripes are one element longer; the arithmetic never forms w*n, so the
// bounds cannot overflow no matter how large n is.
func Stripe(w, workers, n int) (lo, hi int) {
	q, r := n/workers, n%workers
	if w < r {
		lo = w * (q + 1)
		return lo, lo + q + 1
	}
	lo = r*(q+1) + (w-r)*q
	return lo, lo + q
}

// Poller is a cheap cooperative-cancellation probe for tight loops.  Calling
// Cancelled increments a counter and consults ctx.Done() only once every
// `stride` calls, so the common case costs an increment and a compare.  A
// Poller is owned by a single goroutine; it is not safe for concurrent use.
// Once tripped it stays tripped.
type Poller struct {
	done    <-chan struct{}
	ctx     context.Context
	stride  uint32
	n       uint32
	tripped bool
}

// NewPoller returns a Poller checking ctx every `stride` Cancelled calls;
// stride <= 0 selects 1024.  A background (non-cancellable) context yields
// a poller whose Cancelled is a pure counter bump.
func NewPoller(ctx context.Context, stride int) *Poller {
	if stride <= 0 {
		stride = 1024
	}
	return &Poller{done: ctx.Done(), ctx: ctx, stride: uint32(stride)}
}

// Cancelled reports whether the context has been cancelled, polling it at
// the configured stride.
func (p *Poller) Cancelled() bool {
	if p.tripped {
		return true
	}
	if p.done == nil {
		return false
	}
	p.n++
	if p.n%p.stride != 0 {
		return false
	}
	select {
	case <-p.done:
		p.tripped = true
		return true
	default:
		return false
	}
}

// Err returns the context's error; non-nil once the poller's context is
// cancelled (whether or not Cancelled has observed it yet).
func (p *Poller) Err() error { return p.ctx.Err() }
