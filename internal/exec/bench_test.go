package exec

import (
	"context"
	"sync"
	"testing"
)

// BenchmarkShardedOverhead measures the fixed cost of scheduling a batch of
// trivial shards — the engine tax every parallel path pays.
func BenchmarkShardedOverhead(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if err := Sharded(ctx, 16, func(context.Context, int) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedVsWaitGroup compares the engine against the hand-rolled
// pool it replaced, over a small CPU-bound payload.
func BenchmarkShardedVsWaitGroup(b *testing.B) {
	const nshards, work = 8, 1 << 14
	payload := func(s int) int64 {
		var acc int64
		for i := 0; i < work; i++ {
			acc += int64(s * i)
		}
		return acc
	}
	b.Run("exec.Sharded", func(b *testing.B) {
		ctx := context.Background()
		sink := make([]int64, nshards)
		for i := 0; i < b.N; i++ {
			if err := Sharded(ctx, nshards, func(_ context.Context, s int) error {
				sink[s] = payload(s)
				return nil
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sync.WaitGroup", func(b *testing.B) {
		sink := make([]int64, nshards)
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for s := 0; s < nshards; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					sink[s] = payload(s)
				}(s)
			}
			wg.Wait()
		}
	})
}

// BenchmarkPollerCancelled measures the per-iteration probe cost inside hot
// loops under a cancellable context.
func BenchmarkPollerCancelled(b *testing.B) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := NewPoller(ctx, 1024)
	for i := 0; i < b.N; i++ {
		if p.Cancelled() {
			b.Fatal("tripped")
		}
	}
}

// BenchmarkBufferedVsLockedSink shows what the per-shard buffer buys when
// many workers feed one shared consumer.
func BenchmarkBufferedVsLockedSink(b *testing.B) {
	const edges = 1 << 16
	b.Run("locked-direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var c CountingSink
			l := NewLockedSink(&c)
			for e := 0; e < edges; e++ {
				l.Edge(e, e)
			}
		}
	})
	b.Run("buffered-batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var c CountingSink
			bs := NewBufferedSink(NewLockedSink(&c))
			for e := 0; e < edges; e++ {
				bs.Edge(e, e)
			}
			bs.Close()
		}
	})
}

// BenchmarkScratchPool compares pooled scratch acquisition against fresh
// allocation at the size the butterfly counters use per worker.
func BenchmarkScratchPool(b *testing.B) {
	const n = 1 << 16
	b.Run("pooled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := GetInt64s(n)
			s[0] = 1
			PutInt64s(s)
		}
	})
	b.Run("make", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := make([]int64, n)
			s[0] = 1
			_ = s
		}
	})
}
