package exec

import (
	"bufio"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
)

// Sink consumes a stream of product edges.  Implementations are used from
// one goroutine at a time unless documented otherwise (see LockedSink); a
// non-nil error aborts the stream feeding the sink.
type Sink interface {
	Edge(v, w int) error
}

// Flusher is implemented by sinks that buffer; Finish calls it when a
// stream completes normally.
type Flusher interface {
	Flush() error
}

// Finish flushes s if it buffers.  Call it exactly once per sink after the
// last Edge of a successful stream; aborted streams may skip it, leaving
// buffered edges undelivered by design.
func Finish(s Sink) error {
	if f, ok := s.(Flusher); ok {
		return f.Flush()
	}
	return nil
}

// SinkFunc adapts a plain edge callback to a Sink.
type SinkFunc func(v, w int) error

// Edge calls f.
func (f SinkFunc) Edge(v, w int) error { return f(v, w) }

// NullSink discards every edge; the measuring stick for generator-side
// throughput benchmarks.
type NullSink struct{}

// Edge discards the edge.
func (NullSink) Edge(int, int) error { return nil }

// EdgeBatch discards the batch.
func (NullSink) EdgeBatch([]Edge) error { return nil }

// CountingSink counts edges atomically; safe for concurrent writers, so a
// single CountingSink can tally across every shard of a parallel stream.
type CountingSink struct {
	n atomic.Int64
}

// Edge counts the edge.
func (c *CountingSink) Edge(int, int) error {
	c.n.Add(1)
	return nil
}

// EdgeBatch counts the whole batch with one atomic add.
func (c *CountingSink) EdgeBatch(edges []Edge) error {
	c.n.Add(int64(len(edges)))
	return nil
}

// Count returns the number of edges seen so far.
func (c *CountingSink) Count() int64 { return c.n.Load() }

// MultiSink fans each edge out to every member in order, stopping at the
// first error; its Flush flushes every member.
type MultiSink []Sink

// Edge delivers the edge to each member sink.
func (m MultiSink) Edge(v, w int) error {
	for _, s := range m {
		if err := s.Edge(v, w); err != nil {
			return err
		}
	}
	return nil
}

// EdgeBatch delivers the batch to each member, wholesale where the
// member speaks BatchSink and edge-at-a-time otherwise.
func (m MultiSink) EdgeBatch(edges []Edge) error {
	for _, s := range m {
		if err := DeliverBatch(s, edges); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes every member that buffers.
func (m MultiSink) Flush() error {
	for _, s := range m {
		if err := Finish(s); err != nil {
			return err
		}
	}
	return nil
}

// LockedSink serializes concurrent writers onto a single underlying sink
// with a mutex — the bridge between a sharded stream and one shared
// consumer.  Prefer per-shard sinks (or a BufferedSink per shard in front
// of a LockedSink) when contention matters.
type LockedSink struct {
	mu    sync.Mutex
	inner Sink
}

// NewLockedSink wraps inner for concurrent use.
func NewLockedSink(inner Sink) *LockedSink { return &LockedSink{inner: inner} }

// Edge delivers the edge under the lock.
func (l *LockedSink) Edge(v, w int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Edge(v, w)
}

// EdgeBatch delivers the whole batch under one lock acquisition — the
// fan-in cost drops from a lock per edge to a lock per BatchLen edges.
func (l *LockedSink) EdgeBatch(edges []Edge) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return DeliverBatch(l.inner, edges)
}

// Flush flushes the underlying sink under the lock.
func (l *LockedSink) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Finish(l.inner)
}

// bufferedSinkCap is the default BufferedSink capacity: big enough to
// amortize the downstream call, small enough to stay cache-resident.
const bufferedSinkCap = 4096

// BufferedSink batches edges in a pooled buffer and hands them downstream
// in bursts, cutting per-edge call (and, behind a LockedSink, lock) costs.
// It is also the Sink→BatchSink adapter: when the inner sink speaks
// BatchSink, each drain is a single wholesale EdgeBatch call.  Flush
// drains the buffer; Close drains it and returns it to the pool.
type BufferedSink struct {
	inner Sink
	buf   *[]Edge
}

// NewBufferedSink wraps inner with a pooled batch buffer.
func NewBufferedSink(inner Sink) *BufferedSink {
	return &BufferedSink{inner: inner, buf: GetEdgeBuf()}
}

// Edge buffers the edge, draining downstream when the buffer fills.
func (b *BufferedSink) Edge(v, w int) error {
	*b.buf = append(*b.buf, Edge{v, w})
	if len(*b.buf) >= cap(*b.buf) {
		return b.drain()
	}
	return nil
}

// EdgeBatch buffers the batch in capacity-sized chunks.  The incoming
// slice is copied (its producer reuses it), so batches re-emerge
// downstream aligned to this sink's own buffer boundaries.
func (b *BufferedSink) EdgeBatch(edges []Edge) error {
	for len(edges) > 0 {
		take := cap(*b.buf) - len(*b.buf)
		if take > len(edges) {
			take = len(edges)
		}
		*b.buf = append(*b.buf, edges[:take]...)
		edges = edges[take:]
		if len(*b.buf) >= cap(*b.buf) {
			if err := b.drain(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (b *BufferedSink) drain() error {
	err := DeliverBatch(b.inner, *b.buf)
	*b.buf = (*b.buf)[:0]
	return err
}

// Flush drains buffered edges downstream and flushes the inner sink.
func (b *BufferedSink) Flush() error {
	if err := b.drain(); err != nil {
		return err
	}
	return Finish(b.inner)
}

// Close flushes and returns the buffer to the pool; the sink must not be
// used afterwards.
func (b *BufferedSink) Close() error {
	err := b.Flush()
	if b.buf != nil {
		PutEdgeBuf(b.buf)
		b.buf = nil
	}
	return err
}

// TSVSink renders each edge as a "v\tw\n" line — the on-disk interchange
// format of cmd/kronbip — through an internal buffered writer, formatting
// with strconv.AppendInt to keep fmt out of the per-edge path.
type TSVSink struct {
	bw      *bufio.Writer
	scratch []byte
}

// NewTSVSink returns a TSVSink writing to w.
func NewTSVSink(w io.Writer) *TSVSink {
	return &TSVSink{bw: bufio.NewWriterSize(w, 1<<20), scratch: make([]byte, 0, 48)}
}

// Edge writes one tab-separated line.
func (t *TSVSink) Edge(v, w int) error {
	b := t.scratch[:0]
	b = strconv.AppendInt(b, int64(v), 10)
	b = append(b, '\t')
	b = strconv.AppendInt(b, int64(w), 10)
	b = append(b, '\n')
	t.scratch = b
	_, err := t.bw.Write(b)
	return err
}

// tsvChunk bounds how many rendered bytes EdgeBatch accumulates before
// handing them to the buffered writer, keeping the scratch buffer out
// of large-allocation territory on worst-case vertex widths.
const tsvChunk = 32 << 10

// EdgeBatch renders the whole batch into the scratch buffer in chunks,
// paying the writer call once per chunk instead of once per edge.
func (t *TSVSink) EdgeBatch(edges []Edge) error {
	b := t.scratch[:0]
	for _, e := range edges {
		b = strconv.AppendInt(b, int64(e.V), 10)
		b = append(b, '\t')
		b = strconv.AppendInt(b, int64(e.W), 10)
		b = append(b, '\n')
		if len(b) >= tsvChunk {
			if _, err := t.bw.Write(b); err != nil {
				t.scratch = b[:0]
				return err
			}
			b = b[:0]
		}
	}
	t.scratch = b
	if len(b) == 0 {
		return nil
	}
	_, err := t.bw.Write(b)
	return err
}

// Flush flushes the underlying buffered writer.
func (t *TSVSink) Flush() error { return t.bw.Flush() }
