// Package bter implements a bipartite BTER-flavored generator after
// Aksoy–Kolda–Pinar ("Measuring and Modeling Bipartite Graphs with
// Community Structure"), the second stochastic comparator of the paper's
// §I.  Two phases: (1) vertices are grouped by degree into paired affinity
// blocks wired as dense Erdős–Rényi bicliques, producing local butterfly
// structure; (2) residual degree is wired globally Chung–Lu style,
// producing the heavy tail.  Statistics hold in expectation only — the
// contrast to package core's exact ground truth.
package bter

import (
	"fmt"
	"math/rand"
	"sort"

	"kronbip/internal/graph"
)

// Params configures a bipartite BTER instance.
type Params struct {
	// DegreesU and DegreesW are target degree sequences for each side.
	// Their sums should match; a mismatch is tolerated (the smaller sum
	// bounds phase-2 wiring) but reported by Validate as a warning error
	// only when wildly inconsistent.
	DegreesU, DegreesW []int
	// BlockFraction is the fraction of each vertex's degree to consume
	// inside its affinity block (phase 1), in [0,1].
	BlockFraction float64
	// BlockDensity is the Erdős–Rényi edge probability within a block.
	BlockDensity float64
	Seed         int64
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if len(p.DegreesU) == 0 || len(p.DegreesW) == 0 {
		return fmt.Errorf("bter: empty degree sequence")
	}
	for _, d := range append(append([]int{}, p.DegreesU...), p.DegreesW...) {
		if d < 0 {
			return fmt.Errorf("bter: negative degree %d", d)
		}
	}
	if p.BlockFraction < 0 || p.BlockFraction > 1 {
		return fmt.Errorf("bter: BlockFraction %g outside [0,1]", p.BlockFraction)
	}
	if p.BlockDensity < 0 || p.BlockDensity > 1 {
		return fmt.Errorf("bter: BlockDensity %g outside [0,1]", p.BlockDensity)
	}
	return nil
}

// HeavyTailDegrees returns a discrete power-law-ish degree sequence of
// length n with exponent-controlled tail and minimum degree 1, suitable as
// Params input.
func HeavyTailDegrees(n int, maxDegree int, alpha float64, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		// Inverse-transform-style sample with a d^(−alpha)-flavored tail
		// on [1, maxDegree].
		u := rng.Float64()
		d := int(1 + float64(maxDegree-1)*powInv(u, alpha))
		if d < 1 {
			d = 1
		}
		if d > maxDegree {
			d = maxDegree
		}
		out[i] = d
	}
	return out
}

// powInv maps a uniform u to a heavy-tail multiplier in (0,1]:
// (1-u)^(alpha) concentrates mass near 0 leaving a thin tail near 1.
func powInv(u, alpha float64) float64 {
	v := 1 - u
	r := 1.0
	for i := 0; i < int(alpha); i++ {
		r *= v
	}
	return r
}

// Generate produces a bipartite graph approximately realizing the degree
// sequences with planted block structure.
func Generate(p Params) (*graph.Bipartite, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	nu, nw := len(p.DegreesU), len(p.DegreesW)

	// Residual degree trackers.
	resU := append([]int{}, p.DegreesU...)
	resW := append([]int{}, p.DegreesW...)

	// Order each side by descending degree for affinity grouping.
	ordU := argsortDesc(p.DegreesU)
	ordW := argsortDesc(p.DegreesW)

	seen := map[[2]int]bool{}
	var pairs [][2]int
	addEdge := func(u, w int) bool {
		key := [2]int{u, w}
		if seen[key] {
			return false
		}
		seen[key] = true
		pairs = append(pairs, key)
		resU[u]--
		resW[w]--
		return true
	}

	// Phase 1: paired affinity blocks.  Walk both ordered sides in lockstep
	// chunks whose size tracks the current degree, wiring each chunk pair
	// as an ER biclique with probability BlockDensity.
	pu, pw := 0, 0
	for pu < nu && pw < nw {
		d := p.DegreesU[ordU[pu]]
		if dw := p.DegreesW[ordW[pw]]; dw > d {
			d = dw
		}
		size := d + 1
		endU := pu + size
		if endU > nu {
			endU = nu
		}
		endW := pw + size
		if endW > nw {
			endW = nw
		}
		for _, u := range ordU[pu:endU] {
			budget := int(p.BlockFraction * float64(p.DegreesU[u]))
			for _, w := range ordW[pw:endW] {
				if budget <= 0 || resW[w] <= 0 {
					continue
				}
				if rng.Float64() < p.BlockDensity {
					if addEdge(u, w) {
						budget--
					}
				}
			}
		}
		pu, pw = endU, endW
	}

	// Phase 2: Chung–Lu wiring of residual degree.
	var slotsU, slotsW []int
	for u, r := range resU {
		for i := 0; i < r; i++ {
			slotsU = append(slotsU, u)
		}
	}
	for w, r := range resW {
		for i := 0; i < r; i++ {
			slotsW = append(slotsW, w)
		}
	}
	attempts := 0
	target := len(slotsU)
	if len(slotsW) < target {
		target = len(slotsW)
	}
	wired := 0
	for wired < target && attempts < 20*target+100 {
		attempts++
		if len(slotsU) == 0 || len(slotsW) == 0 {
			break
		}
		u := slotsU[rng.Intn(len(slotsU))]
		w := slotsW[rng.Intn(len(slotsW))]
		if resU[u] <= 0 || resW[w] <= 0 {
			continue // slot already consumed by phase 1 overshoot
		}
		if addEdge(u, w) {
			wired++
		}
	}
	return graph.NewBipartite(nu, nw, pairs)
}

func argsortDesc(d []int) []int {
	idx := make([]int, len(d))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return d[idx[a]] > d[idx[b]] })
	return idx
}
