package bter

import (
	"testing"

	"kronbip/internal/cluster"
)

func TestValidate(t *testing.T) {
	good := Params{DegreesU: []int{2, 2}, DegreesW: []int{2, 2}, BlockFraction: 0.7, BlockDensity: 0.8}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Params{
		{DegreesU: nil, DegreesW: []int{1}},
		{DegreesU: []int{1}, DegreesW: nil},
		{DegreesU: []int{-1}, DegreesW: []int{1}},
		{DegreesU: []int{1}, DegreesW: []int{1}, BlockFraction: 1.5},
		{DegreesU: []int{1}, DegreesW: []int{1}, BlockDensity: -0.1},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: invalid params accepted", i)
		}
	}
}

func TestHeavyTailDegrees(t *testing.T) {
	d := HeavyTailDegrees(500, 60, 3, 9)
	if len(d) != 500 {
		t.Fatal("wrong length")
	}
	max, sum := 0, 0
	for _, v := range d {
		if v < 1 || v > 60 {
			t.Fatalf("degree %d out of [1,60]", v)
		}
		if v > max {
			max = v
		}
		sum += v
	}
	mean := float64(sum) / 500
	if float64(max) < 3*mean {
		t.Fatalf("max %d vs mean %.1f: not heavy tailed", max, mean)
	}
}

func TestGenerateShapeAndDeterminism(t *testing.T) {
	p := Params{
		DegreesU:      HeavyTailDegrees(80, 20, 2, 1),
		DegreesW:      HeavyTailDegrees(120, 15, 2, 2),
		BlockFraction: 0.6,
		BlockDensity:  0.8,
		Seed:          5,
	}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.NU() != 80 || a.NW() != 120 {
		t.Fatalf("parts %d/%d", a.NU(), a.NW())
	}
	if !a.IsBipartite() {
		t.Fatal("BTER output not bipartite")
	}
	if a.NumEdges() == 0 {
		t.Fatal("BTER produced no edges")
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
}

func TestDegreesApproximatelyRealized(t *testing.T) {
	deg := make([]int, 60)
	for i := range deg {
		deg[i] = 4
	}
	p := Params{DegreesU: deg, DegreesW: deg, BlockFraction: 0.5, BlockDensity: 0.9, Seed: 13}
	g, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	// Never exceed targets; realize a substantial fraction overall.
	total := 0
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		if d > 4 {
			t.Fatalf("vertex %d degree %d exceeds target 4", v, d)
		}
		total += d
	}
	want := 2 * 60 * 4
	if total < want/2 {
		t.Fatalf("realized degree mass %d below half the target %d", total, want)
	}
}

// TestBlocksCreateButterflies: the phase-1 blocks must produce local
// 4-cycle structure (nonzero clustering), unlike pure Chung-Lu wiring.
func TestBlocksCreateButterflies(t *testing.T) {
	deg := make([]int, 40)
	for i := range deg {
		deg[i] = 6
	}
	blocky := Params{DegreesU: deg, DegreesW: deg, BlockFraction: 0.9, BlockDensity: 0.95, Seed: 21}
	g, err := Generate(blocky)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := cluster.GlobalRobinsAlexander(g.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if ra <= 0.05 {
		t.Fatalf("block phase produced no clustering: RA = %g", ra)
	}
}
