// Package stats provides the degree-distribution tooling the paper's
// design criteria call for ("similarity with respect to size of maximum
// degree, heavy-tail degree distribution"): histograms, complementary
// CDFs, a discrete power-law tail-exponent estimator, and inequality
// summaries, used to compare Kronecker products against the stochastic
// baselines.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a value → count map with helpers.
type Histogram map[int64]int64

// FromValues tallies a histogram from raw values.
func FromValues(values []int64) Histogram {
	h := Histogram{}
	for _, v := range values {
		h[v]++
	}
	return h
}

// Total returns the number of observations.
func (h Histogram) Total() int64 {
	var n int64
	for _, c := range h {
		n += c
	}
	return n
}

// Max returns the largest value with nonzero count (0 for empty).
func (h Histogram) Max() int64 {
	var m int64
	for v, c := range h {
		if c > 0 && v > m {
			m = v
		}
	}
	return m
}

// Mean returns the average value.
func (h Histogram) Mean() float64 {
	n := h.Total()
	if n == 0 {
		return 0
	}
	var s float64
	for v, c := range h {
		s += float64(v) * float64(c)
	}
	return s / float64(n)
}

// Equal reports whether two histograms agree exactly (zero counts ignored).
func (h Histogram) Equal(other Histogram) bool {
	for v, c := range h {
		if c != 0 && other[v] != c {
			return false
		}
	}
	for v, c := range other {
		if c != 0 && h[v] != c {
			return false
		}
	}
	return true
}

// CCDFPoint is one point of the complementary CDF: the fraction of
// observations with value >= V.
type CCDFPoint struct {
	V    int64
	Frac float64
}

// CCDF returns the complementary CDF at every distinct value, ascending —
// the standard log-log rendering of a heavy tail.
func (h Histogram) CCDF() []CCDFPoint {
	n := h.Total()
	if n == 0 {
		return nil
	}
	vals := make([]int64, 0, len(h))
	for v, c := range h {
		if c > 0 {
			vals = append(vals, v)
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	out := make([]CCDFPoint, len(vals))
	remaining := n
	for i, v := range vals {
		out[i] = CCDFPoint{V: v, Frac: float64(remaining) / float64(n)}
		remaining -= h[v]
	}
	return out
}

// PowerLawAlphaMLE estimates the tail exponent α of P(d) ∝ d^(−α) for
// d ≥ dmin using the standard continuous-approximation maximum-likelihood
// estimator of Clauset–Shalizi–Newman:
//
//	α ≈ 1 + n / Σ ln( d_i / (dmin − ½) ).
//
// Returns an error when fewer than 2 observations reach the tail.
func (h Histogram) PowerLawAlphaMLE(dmin int64) (alpha float64, tailN int64, err error) {
	if dmin < 1 {
		return 0, 0, fmt.Errorf("stats: dmin must be >= 1")
	}
	var n int64
	var s float64
	for v, c := range h {
		if v >= dmin && c > 0 {
			n += c
			s += float64(c) * math.Log(float64(v)/(float64(dmin)-0.5))
		}
	}
	if n < 2 || s <= 0 {
		return 0, n, fmt.Errorf("stats: %d tail observations at dmin=%d is too few for an MLE", n, dmin)
	}
	return 1 + float64(n)/s, n, nil
}

// Gini returns the Gini coefficient of the value distribution — 0 for a
// perfectly uniform (regular) degree sequence, approaching 1 for extreme
// concentration on hubs.
func (h Histogram) Gini() float64 {
	n := h.Total()
	if n == 0 {
		return 0
	}
	vals := make([]int64, 0, len(h))
	for v, c := range h {
		if c > 0 {
			vals = append(vals, v)
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	// Gini = (2·Σ_i i·x_(i) / (n·Σ x)) − (n+1)/n with 1-based ranks over the
	// expanded multiset; expand rank ranges per distinct value.
	var total float64
	var weighted float64
	rank := int64(0)
	for _, v := range vals {
		c := h[v]
		// Ranks rank+1 .. rank+c all carry value v; Σ ranks = c·rank + c(c+1)/2.
		weighted += float64(v) * (float64(c)*float64(rank) + float64(c)*float64(c+1)/2)
		total += float64(v) * float64(c)
		rank += c
	}
	if total == 0 {
		return 0
	}
	return 2*weighted/(float64(n)*total) - float64(n+1)/float64(n)
}
