package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := FromValues([]int64{1, 2, 2, 3, 3, 3})
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Max() != 3 {
		t.Fatalf("Max = %d", h.Max())
	}
	if math.Abs(h.Mean()-14.0/6) > 1e-12 {
		t.Fatalf("Mean = %g", h.Mean())
	}
	if !h.Equal(Histogram{1: 1, 2: 2, 3: 3}) {
		t.Fatal("Equal false negative")
	}
	if h.Equal(Histogram{1: 1, 2: 2, 3: 2}) {
		t.Fatal("Equal false positive")
	}
	// Zero counts are ignored by Equal.
	if !h.Equal(Histogram{1: 1, 2: 2, 3: 3, 99: 0}) {
		t.Fatal("Equal should ignore zero counts")
	}
	empty := Histogram{}
	if empty.Total() != 0 || empty.Max() != 0 || empty.Mean() != 0 || empty.Gini() != 0 {
		t.Fatal("empty histogram stats should be zero")
	}
	if empty.CCDF() != nil {
		t.Fatal("empty CCDF should be nil")
	}
}

func TestCCDF(t *testing.T) {
	h := FromValues([]int64{1, 1, 2, 4})
	ccdf := h.CCDF()
	want := []CCDFPoint{{1, 1.0}, {2, 0.5}, {4, 0.25}}
	if len(ccdf) != len(want) {
		t.Fatalf("CCDF = %v", ccdf)
	}
	for i := range want {
		if ccdf[i].V != want[i].V || math.Abs(ccdf[i].Frac-want[i].Frac) > 1e-12 {
			t.Fatalf("CCDF[%d] = %v, want %v", i, ccdf[i], want[i])
		}
	}
	// CCDF is non-increasing.
	for i := 1; i < len(ccdf); i++ {
		if ccdf[i].Frac > ccdf[i-1].Frac {
			t.Fatal("CCDF increased")
		}
	}
}

func TestPowerLawAlphaMLERecovers(t *testing.T) {
	// Sample from a discrete power law with α = 2.5 via inverse transform
	// on the continuous approximation, then check the MLE lands near 2.5.
	rng := rand.New(rand.NewSource(42))
	const alpha = 2.5
	const dmin = 4
	var values []int64
	for i := 0; i < 30000; i++ {
		u := rng.Float64()
		d := float64(dmin) * math.Pow(1-u, -1/(alpha-1))
		values = append(values, int64(d))
	}
	h := FromValues(values)
	got, n, err := h.PowerLawAlphaMLE(dmin)
	if err != nil {
		t.Fatal(err)
	}
	if n < 25000 {
		t.Fatalf("tail too small: %d", n)
	}
	if math.Abs(got-alpha) > 0.15 {
		t.Fatalf("MLE α = %g, want ≈ %g", got, alpha)
	}
}

func TestPowerLawAlphaMLEErrors(t *testing.T) {
	h := FromValues([]int64{1, 2})
	if _, _, err := h.PowerLawAlphaMLE(0); err == nil {
		t.Fatal("accepted dmin < 1")
	}
	if _, _, err := h.PowerLawAlphaMLE(100); err == nil {
		t.Fatal("accepted empty tail")
	}
	// dmin = 1 makes ln(d/(dmin-1/2)) positive only for d >= 1; a single
	// distinct value still yields a degenerate estimate guard.
	ones := FromValues([]int64{1, 1, 1})
	if _, _, err := ones.PowerLawAlphaMLE(1); err != nil {
		// Acceptable: either a finite estimate or a degenerate-tail error.
		t.Logf("degenerate tail rejected: %v", err)
	}
}

func TestGini(t *testing.T) {
	// Perfect equality → 0.
	if g := FromValues([]int64{5, 5, 5, 5}).Gini(); math.Abs(g) > 1e-12 {
		t.Fatalf("uniform Gini = %g", g)
	}
	// Extreme concentration: n-1 zeros and one big value → (n-1)/n.
	h := FromValues([]int64{0, 0, 0, 100})
	if g := h.Gini(); math.Abs(g-0.75) > 1e-12 {
		t.Fatalf("concentrated Gini = %g, want 0.75", g)
	}
	// Heavy tail sits strictly between.
	ht := FromValues([]int64{1, 1, 1, 1, 2, 2, 3, 10, 40})
	g := ht.Gini()
	if g <= 0.3 || g >= 1 {
		t.Fatalf("heavy-tail Gini = %g", g)
	}
}
