// Quickstart: build a bipartite Kronecker product with exact 4-cycle ground
// truth in a dozen lines, then double-check it the hard way.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"kronbip/internal/core"
	"kronbip/internal/count"
	"kronbip/internal/gen"
)

func main() {
	// Two small bipartite factors: a crown (K44 minus a matching) and a
	// 6-cycle.  Assumption 1(ii): C = (A + I_A) ⊗ B is connected & bipartite.
	a := gen.Crown(4).Graph
	b := gen.Cycle(6)
	p, err := core.New(a, b, core.ModeSelfLoopFactor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p)

	// Global ground truth is closed form — no product graph was built.
	fmt.Printf("global 4-cycles (ground truth):  %d\n", p.GlobalFourCycles())

	// Point queries are O(1) from factor statistics.
	v := p.IndexOf(3, 2) // product vertex pairing factor vertices (3, 2)
	fmt.Printf("vertex %d: degree=%d, 4-cycles=%d\n", v, p.DegreeAt(v), p.VertexFourCyclesAt(v))

	// Stream a few edges with their per-edge 4-cycle counts.
	shown := 0
	p.EachEdgeFourCycle(func(v, w int, squares int64) bool {
		fmt.Printf("edge (%d,%d): ◊=%d\n", v, w, squares)
		shown++
		return shown < 5
	})

	// The point of the paper: the ground truth validates real counters.
	g, err := p.Materialize(0)
	if err != nil {
		log.Fatal(err)
	}
	direct, err := count.GlobalButterflies(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("global 4-cycles (brute force):   %d\n", direct)
	if direct == p.GlobalFourCycles() {
		fmt.Println("✓ counter validated against ground truth")
	} else {
		fmt.Println("✗ counter is WRONG — and the generator caught it")
	}
}
