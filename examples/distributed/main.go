// Distributed generation: a simulation of the paper's §V future work —
// generating a bipartite Kronecker graph across ranks while computing the
// exact ground truth *during* generation.  Each rank owns a slice of the
// product's vertex space, generates its local edges, evaluates its
// vertices' and edges' 4-cycle ground truth from factor statistics alone,
// and ships only an O(1) summary to the coordinator, which reduces to the
// exact global counts — twice, via two independent identities.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"kronbip/internal/core"
	"kronbip/internal/dist"
	"kronbip/internal/gen"
)

func main() {
	a := gen.ConnectedBipartiteScaleFree(64, 128, 320, 7)
	p, err := core.NewRelaxedWithParts(a.Graph, a, core.ModeSelfLoopFactor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("product: %v\n\n", p)

	for _, ranks := range []int{1, 2, 4, 8} {
		start := time.Now()
		res, err := dist.Generate(p, ranks)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("ranks=%d  wall=%v  edges=%d  □(vertex route)=%d  □(edge route)=%d  agree=%v\n",
			ranks, elapsed, res.TotalEdges, res.GlobalFour, res.GlobalFourE,
			res.GlobalFour == res.GlobalFourE)
	}

	fmt.Printf("\ncoordinator reference (closed form, no generation): □ = %d\n", p.GlobalFourCycles())
	res, _ := dist.Generate(p, 4)
	fmt.Println("\nper-rank tallies (ranks own contiguous vertex blocks):")
	fmt.Printf("%5s %12s %10s %14s %14s\n", "rank", "vertices", "edges", "Σ s_v", "max s_v")
	for _, s := range res.Shards {
		fmt.Printf("%5d [%5d,%5d) %10d %14d %14d\n", s.Rank, s.VertexLo, s.VertexHi, s.Edges, s.SumVertex, s.MaxVertex)
	}
}
