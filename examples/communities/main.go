// Communities: a recommender-system-flavored demo of §III-C.  Think of the
// factors as small user×item rating graphs with one dense genre cluster
// each; the Kronecker product is then a large user×item graph, and Thm. 7
// tells us — exactly, without building the product — how dense the product
// cluster is and how weakly it couples to the rest of the graph.
//
//	go run ./examples/communities
package main

import (
	"fmt"
	"log"

	"kronbip/internal/biclique"
	"kronbip/internal/community"
	"kronbip/internal/core"
	"kronbip/internal/graph"
)

// ratingFactor builds a small bipartite "users × items" factor with a
// planted dense genre block (users 0..3 × items 0..3) over a sparse
// background.
func ratingFactor() (*graph.Bipartite, []int) {
	const users, items = 16, 16
	var pairs [][2]int
	// Genre cluster: the first four users rate almost all of the first
	// four items.
	for u := 0; u < 4; u++ {
		for it := 0; it < 4; it++ {
			if (u+it)%7 != 6 { // drop a couple of ratings; clusters are never perfect
				pairs = append(pairs, [2]int{u, it})
			}
		}
	}
	// Sparse long-tail ratings elsewhere.
	for u := 0; u < users; u++ {
		pairs = append(pairs, [2]int{u, (3*u + 5) % items})
	}
	b, err := graph.NewBipartite(users, items, pairs)
	if err != nil {
		log.Fatal(err)
	}
	members := []int{0, 1, 2, 3, users + 0, users + 1, users + 2, users + 3}
	return b, members
}

func main() {
	a, membersA := ratingFactor()
	b, membersB := ratingFactor()

	p, err := core.NewRelaxedWithParts(a.Graph, b, core.ModeSelfLoopFactor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("product rating graph: %v\n\n", p)

	sa, err := community.NewSet(a, membersA)
	if err != nil {
		log.Fatal(err)
	}
	sb, err := community.NewSet(b, membersB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factor cluster A: |S|=%d  ρ_in=%.3f  ρ_out=%.4f\n", sa.Size(), sa.InternalDensity(), sa.ExternalDensity())
	fmt.Printf("factor cluster B: |S|=%d  ρ_in=%.3f  ρ_out=%.4f\n\n", sb.Size(), sb.InternalDensity(), sb.ExternalDensity())

	// The densest structure a bipartite graph can hold is a biclique; the
	// planted genre block should dominate factor A's maximal bicliques.
	best, err := biclique.Maximum(a, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("densest biclique in factor A: %d users × %d items (%d ratings) — inside the planted genre block\n\n",
		len(best.U), len(best.W), best.Edges())

	pc, err := community.NewProductCommunity(p, sa, sb)
	if err != nil {
		log.Fatal(err)
	}
	rc, tc := pc.PartSizes()
	fmt.Printf("product cluster S_C = S_A ⊗ S_B: %d users × %d items (Def. 12)\n", rc, tc)
	fmt.Printf("m_in  (Thm. 7, exact):  %d\n", pc.InternalEdges())
	fmt.Printf("m_out (Thm. 7, exact):  %d\n", pc.ExternalEdges())
	fmt.Printf("ρ_in(S_C)  = %.4f\n", pc.InternalDensity())
	fmt.Printf("ρ_out(S_C) = %.6f\n\n", pc.ExternalDensity())

	omegaBound, thetaBound := pc.Cor1Bound()
	fmt.Printf("Cor. 1 scaling law: ρ_in ≥ 2θ·ρAρB = %.4f (ω form: %.4f) — holds: %v\n",
		thetaBound, omegaBound, pc.InternalDensity() >= thetaBound)
	fmt.Printf("Cor. 2 scaling law: ρ_out ≤ %.4f — holds: %v\n",
		pc.Cor2Bound(), pc.ExternalDensity() <= pc.Cor2Bound())

	// Cross-check Thm. 7 the expensive way.
	g, err := p.Materialize(0)
	if err != nil {
		log.Fatal(err)
	}
	inSet := map[int]bool{}
	for _, v := range pc.Members() {
		inSet[v] = true
	}
	var exactIn, exactOut int64
	g.EachEdge(func(u, v int) bool {
		switch {
		case inSet[u] && inSet[v]:
			exactIn++
		case inSet[u] != inSet[v]:
			exactOut++
		}
		return true
	})
	fmt.Printf("\nbrute-force check on the materialized product: m_in=%d m_out=%d → match: %v\n",
		exactIn, exactOut, exactIn == pc.InternalEdges() && exactOut == pc.ExternalEdges())
}
