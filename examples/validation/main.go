// Validation-at-scale: the paper's headline use case.  A researcher has a
// new butterfly-counting implementation and wants to know it is *exactly*
// right on a graph far too large to check by hand.  We generate a
// ~750k-vertex, ~4.2M-edge bipartite Kronecker product with closed-form
// ground truth, then grade two implementations against it: a correct
// wedge counter and a subtly buggy one (an off-by-one in wedge pairing —
// exactly the "global count off by 1 per wedge" class of bug §I says is
// otherwise near-impossible to detect without a second implementation).
//
//	go run ./examples/validation
package main

import (
	"fmt"
	"log"
	"time"

	"kronbip/internal/core"
	"kronbip/internal/gen"
	"kronbip/internal/graph"
)

// buggyVertexButterflies is a plausible-looking wedge counter with a
// classic mistake: it forgets to exclude the 2-hop walks u→v→u that return
// to the source, so every vertex with degree ≥ 2 picks up a spurious
// C(d_u, 2) "4-cycles".  Global counts inflate smoothly rather than
// obviously, which is what makes the bug survivable — until it meets a
// generator with exact per-vertex ground truth.
func buggyVertexButterflies(g *graph.Graph, u int) int64 {
	c := map[int]int64{}
	for _, v := range g.Neighbors(u) {
		for _, w := range g.Neighbors(v) {
			c[w]++ // BUG: w == u should be excluded
		}
	}
	var total int64
	for _, cnt := range c {
		total += cnt * (cnt - 1) / 2
	}
	return total
}

// correctVertexButterflies is the reference wedge counter.
func correctVertexButterflies(g *graph.Graph, u int) int64 {
	c := map[int]int64{}
	for _, v := range g.Neighbors(u) {
		for _, w := range g.Neighbors(v) {
			if w != u {
				c[w]++
			}
		}
	}
	var total int64
	for _, cnt := range c {
		total += cnt * (cnt - 1) / 2
	}
	return total
}

func main() {
	start := time.Now()
	a := gen.UnicodeLike(2020)
	p, err := core.NewRelaxedWithParts(a.Graph, a, core.ModeSelfLoopFactor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generator ready in %v: %v\n", time.Since(start), p)
	fmt.Printf("ground truth global 4-cycles: %d (closed form)\n\n", p.GlobalFourCycles())

	start = time.Now()
	g, err := p.Materialize(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized %d edges in %v for the counters under test\n\n", g.NumEdges(), time.Since(start))

	// Grade both implementations on a deterministic vertex sample.
	sample := 2000
	step := p.N() / sample
	var buggyWrong, correctWrong int
	for v := 0; v < p.N(); v += step {
		truth := p.VertexFourCyclesAt(v)
		if buggyVertexButterflies(g, v) != truth {
			buggyWrong++
		}
		if correctVertexButterflies(g, v) != truth {
			correctWrong++
		}
	}
	checked := (p.N() + step - 1) / step
	fmt.Printf("graded %d sampled vertices against O(1) ground-truth queries:\n", checked)
	fmt.Printf("  reference implementation: %d mismatches\n", correctWrong)
	fmt.Printf("  buggy implementation:     %d mismatches\n", buggyWrong)
	switch {
	case correctWrong == 0 && buggyWrong > 0:
		fmt.Println("✓ ground truth separates the correct counter from the buggy one")
	case correctWrong == 0 && buggyWrong == 0:
		fmt.Println("note: the bug did not surface on this sample; rerun with another seed")
	default:
		fmt.Println("✗ the reference implementation disagrees with ground truth — investigate!")
	}
}
