// Wing decomposition: the paper's cautionary tale (abstract and Rem. 1).
// k-wing / bitruss decomposition peels bipartite graphs by per-edge
// butterfly support, and one might hope Kronecker products give it ground
// truth for free.  They do not: products of 4-cycle-free factors still
// acquire 4-cycles at vertices/edges whose factor counterparts have none.
// This demo makes that concrete: two butterfly-free factors, a product
// with hundreds of butterflies, and its full wing decomposition.
//
//	go run ./examples/wingdecomp
package main

import (
	"fmt"
	"log"
	"sort"

	"kronbip/internal/core"
	"kronbip/internal/gen"
	"kronbip/internal/graph"
	"kronbip/internal/wing"
)

func main() {
	a := gen.BinaryTree(3) // bipartite tree: zero 4-cycles
	b := gen.DoubleStar(3, 3)
	p, err := core.New(a, b, core.ModeSelfLoopFactor)
	if err != nil {
		log.Fatal(err)
	}
	fa, fb := p.FactorA(), p.FactorB()
	fmt.Printf("factor A (binary tree):  □ = %d\n", fa.Global4)
	fmt.Printf("factor B (double star):  □ = %d\n", fb.Global4)
	fmt.Printf("product %v\n", p)
	fmt.Printf("product □ = %d (Rem. 1: never zero for non-trivial factors)\n\n", p.GlobalFourCycles())

	g, err := p.Materialize(0)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := wing.Decomposition(g)
	if err != nil {
		log.Fatal(err)
	}
	hist := map[int64]int{}
	for _, k := range dec {
		hist[k]++
	}
	levels := make([]int64, 0, len(hist))
	for k := range hist {
		levels = append(levels, k)
	}
	sort.Slice(levels, func(i, j int) bool { return levels[i] < levels[j] })
	fmt.Println("wing-number histogram of the product (edges per level):")
	for _, k := range levels {
		fmt.Printf("  wing %3d: %5d edges\n", k, hist[k])
	}
	maxWing := levels[len(levels)-1]
	fmt.Printf("\nmax wing = %d despite both factors being butterfly-free —\n", maxWing)
	fmt.Println("engineering a product with a prescribed wing decomposition is therefore")
	fmt.Println("hard (the paper's point); use the exact ◊ ground truth to *check* wing")
	fmt.Println("implementations instead, e.g. every wing number must satisfy")
	fmt.Println("wing(e) ≤ ◊(e):")
	bad := 0
	total := 0
	p.EachEdgeFourCycle(func(v, w int, sq int64) bool {
		e := edgeKey(v, w)
		if k, ok := dec[e]; ok {
			total++
			if k > sq {
				bad++
			}
		}
		return true
	})
	fmt.Printf("checked %d edges: %d violations\n", total, bad)
}

func edgeKey(v, w int) graph.Edge {
	if v > w {
		v, w = w, v
	}
	return graph.Edge{U: v, V: w}
}
