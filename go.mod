module kronbip

go 1.22
