// Command experiments regenerates every table and figure of the paper's
// evaluation.  Each experiment prints a formatted table to stdout; Fig. 5
// additionally writes its scatter data as TSV under -out.
//
// Usage:
//
//	experiments -run all                # everything (default)
//	experiments -run tab1 -samples 500  # Table I with 500-sample validation
//	experiments -run fig5 -out results  # Fig. 5 + results/fig5.tsv
//	experiments -run tab1,fig1,thm6     # comma-separated subset
//
// Experiment ids: tab1, fig1, fig5, thm345, thm6, thm7, rem1, scale,
// baselines (see DESIGN.md §4 for the per-experiment index).
//
// The observability flags (-metrics-out, -cpuprofile, -memprofile, -trace,
// -debug-addr) instrument the run; with -metrics-out the final snapshot
// includes one "experiments.<id>" span per experiment, so the snapshot
// doubles as a per-experiment time breakdown.  -timeline-out/-journal-out
// additionally record a per-stage/shard/kernel event timeline (Chrome
// trace_event JSON / logfmt; see internal/obs/timeline).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"kronbip/internal/cli"
	"kronbip/internal/experiments"
	"kronbip/internal/graph"
	"kronbip/internal/mmio"
	"kronbip/internal/obs"
	"kronbip/internal/obs/timeline"
)

var errValidation = errors.New("one or more experiments failed")

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		run     = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		seed    = flag.Int64("seed", 2020, "deterministic seed for synthetic factors")
		samples = flag.Int("samples", 200, "sampled vertices/edges for Table I brute-force validation (0 skips materialization)")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		outDir  = flag.String("out", "results", "directory for TSV figure data")
		steps   = flag.Int("scale-steps", 4, "size steps for the scaling experiment")
		unicode = flag.String("unicode", "", "path to the real Konect unicode out.* file; when set, tab1/fig5 use it instead of the synthetic stand-in")
		mdOut   = flag.String("md", "", "run everything and write the EXPERIMENTS.md report to this path (overrides -run)")
	)
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	tlFlags := timeline.RegisterFlags(flag.CommandLine)
	verb := cli.RegisterVerbosity(flag.CommandLine)
	flag.Parse()

	stopObs, err := obsFlags.Start()
	if err != nil {
		return cli.Fail("experiments", err)
	}
	stopTL, err := tlFlags.Start(os.Stderr)
	if err != nil {
		stopObs()
		return cli.Fail("experiments", err)
	}
	err = runExperiments(*run, *seed, *samples, *workers, *outDir, *steps, *unicode, *mdOut, verb)
	// Stop the timeline first so its straggler gauges land in the
	// -metrics-out snapshot the obs stop writes.
	if stopErr := stopTL(); stopErr != nil && err == nil {
		err = stopErr
	}
	if stopErr := stopObs(); stopErr != nil && err == nil {
		err = stopErr
	}
	return cli.Fail("experiments", err)
}

func runExperiments(run string, seed int64, samples, workers int, outDir string, steps int, unicode, mdOut string, verb *cli.Verbosity) error {
	if mdOut != "" {
		report, err := experiments.RunAll(seed, samples, steps, workers)
		if err != nil {
			return err
		}
		f, err := os.Create(mdOut)
		if err != nil {
			return err
		}
		if err := report.WriteMarkdown(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		verb.Summaryf("wrote %s (all experiments valid: %v, %v)\n", mdOut, report.Valid(), report.Elapsed.Round(10_000_000))
		if !report.Valid() {
			return errValidation
		}
		return nil
	}

	var realFactor *graph.Bipartite
	if unicode != "" {
		f, err := os.Open(unicode)
		if err != nil {
			return fmt.Errorf("-unicode: %w", err)
		}
		realFactor, err = mmio.ReadKonectBipartite(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("-unicode: %w", err)
		}
		verb.Summaryf("loaded Konect factor from %s: |U|=%d |W|=%d |E|=%d\n", unicode, realFactor.NU(), realFactor.NW(), realFactor.NumEdges())
	}

	want := map[string]bool{}
	for _, id := range strings.Split(run, ",") {
		want[strings.TrimSpace(strings.ToLower(id))] = true
	}
	all := want["all"]
	failed := false
	ran := 0

	invalid := func(id, msg string) {
		fmt.Fprintf(os.Stderr, "experiments %s: %s\n", id, msg)
		failed = true
	}
	writeTSV := func(name string, emit func(w io.Writer) error) error {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(outDir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		verb.Summaryf("wrote %s\n", path)
		return nil
	}

	// Each experiment is one table entry; the runner loop prints the
	// section header, brackets the run in an "experiments.<id>" span, and
	// reports failures in the shared CLI shape without aborting the sweep
	// (the run still exits non-zero at the end).
	sections := []struct {
		id  string
		run func(id string) error
	}{
		{"tab1", func(id string) error {
			var res *experiments.TableIResult
			var err error
			if realFactor != nil {
				res, err = experiments.RunTableIWithFactor(realFactor, "A (Konect unicode)", seed, samples, workers)
			} else {
				res, err = experiments.RunTableI(seed, samples, workers)
			}
			if err != nil {
				return err
			}
			fmt.Println(res)
			if !res.Valid() {
				invalid(id, "VALIDATION FAILED")
			}
			return nil
		}},
		{"fig1", func(id string) error {
			res, err := experiments.RunFig1()
			if err != nil {
				return err
			}
			fmt.Println(res)
			if !res.Valid() {
				invalid(id, "outcomes disagree with the paper's claims")
			}
			return nil
		}},
		{"fig5", func(id string) error {
			var res *experiments.Fig5Result
			var err error
			if realFactor != nil {
				res, err = experiments.RunFig5WithFactor(realFactor)
			} else {
				res, err = experiments.RunFig5(seed)
			}
			if err != nil {
				return err
			}
			fmt.Println(res)
			return writeTSV("fig5.tsv", res.WriteTSV)
		}},
		{"thm345", func(id string) error {
			res, err := experiments.RunFormulaValidation()
			if err != nil {
				return err
			}
			fmt.Println(res)
			if !res.Valid() {
				invalid(id, "formula mismatch")
			}
			return nil
		}},
		{"thm6", func(id string) error {
			res, err := experiments.RunClusteringLaw(seed)
			if err != nil {
				return err
			}
			fmt.Println(res)
			if !res.BoundOK {
				invalid(id, "bound violated")
			}
			return nil
		}},
		{"thm7", func(id string) error {
			res, err := experiments.RunCommunity(seed)
			if err != nil {
				return err
			}
			fmt.Println(res)
			if !res.FormulasExact || !res.BoundsHold {
				invalid(id, "formulas or bounds failed")
			}
			return nil
		}},
		{"rem1", func(id string) error {
			res, err := experiments.RunRemark1()
			if err != nil {
				return err
			}
			fmt.Println(res)
			if !res.Valid() {
				invalid(id, "demonstration failed")
			}
			return nil
		}},
		{"scale", func(id string) error {
			res, err := experiments.RunScaling(steps, seed, workers)
			if err != nil {
				return err
			}
			fmt.Println(res)
			return nil
		}},
		{"baselines", func(id string) error {
			res, err := experiments.RunBaselines(seed)
			if err != nil {
				return err
			}
			fmt.Println(res)
			return nil
		}},
		{"ecc", func(id string) error {
			res, err := experiments.RunDistances()
			if err != nil {
				return err
			}
			fmt.Println(res)
			if !res.Valid() {
				invalid(id, "distance ground truth mismatch")
			}
			return nil
		}},
		{"deg", func(id string) error {
			res, err := experiments.RunDegrees(seed)
			if err != nil {
				return err
			}
			fmt.Println(res)
			if !res.HistogramMatches {
				invalid(id, "degree histogram mismatch")
			}
			return writeTSV("degree_ccdf.tsv", res.WriteCCDFTSV)
		}},
		{"eig", func(id string) error {
			res, err := experiments.RunSpectral()
			if err != nil {
				return err
			}
			fmt.Println(res)
			if !res.Valid() {
				invalid(id, "spectral ground truth mismatch")
			}
			return nil
		}},
		{"dist", func(id string) error {
			res, err := experiments.RunDistributed(seed)
			if err != nil {
				return err
			}
			fmt.Println(res)
			if !res.Valid() {
				invalid(id, "distributed reduction mismatch")
			}
			return nil
		}},
		{"approx", func(id string) error {
			res, err := experiments.RunApprox(seed)
			if err != nil {
				return err
			}
			fmt.Println(res)
			if !res.Valid() {
				invalid(id, "estimator grading failed")
			}
			return nil
		}},
	}
	for _, s := range sections {
		if !all && !want[s.id] {
			continue
		}
		ran++
		fmt.Printf("=== %s ===\n", s.id)
		done := obs.Timed("experiments." + s.id)
		var end timeline.Done
		if timeline.Enabled() {
			end = timeline.Begin(timeline.CatStage, "experiments."+s.id, 0)
		}
		err := s.run(s.id)
		if end != nil {
			end(err)
		}
		done()
		if err != nil {
			cli.Fail("experiments "+s.id, err)
			failed = true
		}
	}

	if ran == 0 {
		return cli.UsageErrorf("unknown experiment id(s) %q; known: tab1 fig1 fig5 thm345 thm6 thm7 rem1 scale baselines ecc deg eig dist approx all", run)
	}
	if failed {
		return errValidation
	}
	return nil
}
