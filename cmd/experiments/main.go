// Command experiments regenerates every table and figure of the paper's
// evaluation.  Each experiment prints a formatted table to stdout; Fig. 5
// additionally writes its scatter data as TSV under -out.
//
// Usage:
//
//	experiments -run all                # everything (default)
//	experiments -run tab1 -samples 500  # Table I with 500-sample validation
//	experiments -run fig5 -out results  # Fig. 5 + results/fig5.tsv
//	experiments -run tab1,fig1,thm6     # comma-separated subset
//
// Experiment ids: tab1, fig1, fig5, thm345, thm6, thm7, rem1, scale,
// baselines (see DESIGN.md §4 for the per-experiment index).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"kronbip/internal/experiments"
	"kronbip/internal/graph"
	"kronbip/internal/mmio"
)

func main() {
	var (
		run     = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		seed    = flag.Int64("seed", 2020, "deterministic seed for synthetic factors")
		samples = flag.Int("samples", 200, "sampled vertices/edges for Table I brute-force validation (0 skips materialization)")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		outDir  = flag.String("out", "results", "directory for TSV figure data")
		steps   = flag.Int("scale-steps", 4, "size steps for the scaling experiment")
		unicode = flag.String("unicode", "", "path to the real Konect unicode out.* file; when set, tab1/fig5 use it instead of the synthetic stand-in")
		mdOut   = flag.String("md", "", "run everything and write the EXPERIMENTS.md report to this path (overrides -run)")
	)
	flag.Parse()

	if *mdOut != "" {
		report, err := experiments.RunAll(*seed, *samples, *steps, *workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*mdOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		if err := report.WriteMarkdown(f); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s (all experiments valid: %v, %v)\n", *mdOut, report.Valid(), report.Elapsed.Round(10_000_000))
		if !report.Valid() {
			os.Exit(1)
		}
		return
	}

	var realFactor *graph.Bipartite
	if *unicode != "" {
		f, err := os.Open(*unicode)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: -unicode: %v\n", err)
			os.Exit(1)
		}
		realFactor, err = mmio.ReadKonectBipartite(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: -unicode: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("loaded Konect factor from %s: |U|=%d |W|=%d |E|=%d\n\n", *unicode, realFactor.NU(), realFactor.NW(), realFactor.NumEdges())
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		want[strings.TrimSpace(strings.ToLower(id))] = true
	}
	all := want["all"]
	failed := false
	ran := 0

	section := func(id string) bool {
		if all || want[id] {
			ran++
			fmt.Printf("=== %s ===\n", id)
			return true
		}
		return false
	}
	report := func(err error) bool {
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			failed = true
			return false
		}
		return true
	}

	if section("tab1") {
		var res *experiments.TableIResult
		var err error
		if realFactor != nil {
			res, err = experiments.RunTableIWithFactor(realFactor, "A (Konect unicode)", *seed, *samples, *workers)
		} else {
			res, err = experiments.RunTableI(*seed, *samples, *workers)
		}
		if report(err) {
			fmt.Println(res)
			if !res.Valid() {
				fmt.Fprintln(os.Stderr, "tab1: VALIDATION FAILED")
				failed = true
			}
		}
	}
	if section("fig1") {
		res, err := experiments.RunFig1()
		if report(err) {
			fmt.Println(res)
			if !res.Valid() {
				fmt.Fprintln(os.Stderr, "fig1: outcomes disagree with the paper's claims")
				failed = true
			}
		}
	}
	if section("fig5") {
		var res *experiments.Fig5Result
		var err error
		if realFactor != nil {
			res, err = experiments.RunFig5WithFactor(realFactor)
		} else {
			res, err = experiments.RunFig5(*seed)
		}
		if report(err) {
			fmt.Println(res)
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				report(err)
			} else {
				path := filepath.Join(*outDir, "fig5.tsv")
				f, err := os.Create(path)
				if report(err) {
					if report(res.WriteTSV(f)) {
						fmt.Printf("wrote %s (%d factor + %d product points)\n\n", path, len(res.FactorPoints), len(res.ProductPoints))
					}
					f.Close()
				}
			}
		}
	}
	if section("thm345") {
		res, err := experiments.RunFormulaValidation()
		if report(err) {
			fmt.Println(res)
			if !res.Valid() {
				fmt.Fprintln(os.Stderr, "thm345: formula mismatch")
				failed = true
			}
		}
	}
	if section("thm6") {
		res, err := experiments.RunClusteringLaw(*seed)
		if report(err) {
			fmt.Println(res)
			if !res.BoundOK {
				fmt.Fprintln(os.Stderr, "thm6: bound violated")
				failed = true
			}
		}
	}
	if section("thm7") {
		res, err := experiments.RunCommunity(*seed)
		if report(err) {
			fmt.Println(res)
			if !res.FormulasExact || !res.BoundsHold {
				fmt.Fprintln(os.Stderr, "thm7: formulas or bounds failed")
				failed = true
			}
		}
	}
	if section("rem1") {
		res, err := experiments.RunRemark1()
		if report(err) {
			fmt.Println(res)
			if !res.Valid() {
				fmt.Fprintln(os.Stderr, "rem1: demonstration failed")
				failed = true
			}
		}
	}
	if section("scale") {
		res, err := experiments.RunScaling(*steps, *seed, *workers)
		if report(err) {
			fmt.Println(res)
		}
	}
	if section("baselines") {
		res, err := experiments.RunBaselines(*seed)
		if report(err) {
			fmt.Println(res)
		}
	}
	if section("ecc") {
		res, err := experiments.RunDistances()
		if report(err) {
			fmt.Println(res)
			if !res.Valid() {
				fmt.Fprintln(os.Stderr, "ecc: distance ground truth mismatch")
				failed = true
			}
		}
	}
	if section("deg") {
		res, err := experiments.RunDegrees(*seed)
		if report(err) {
			fmt.Println(res)
			if !res.HistogramMatches {
				fmt.Fprintln(os.Stderr, "deg: degree histogram mismatch")
				failed = true
			}
			if err := os.MkdirAll(*outDir, 0o755); err == nil {
				path := filepath.Join(*outDir, "degree_ccdf.tsv")
				if f, err := os.Create(path); err == nil {
					if report(res.WriteCCDFTSV(f)) {
						fmt.Printf("wrote %s\n\n", path)
					}
					f.Close()
				}
			}
		}
	}
	if section("eig") {
		res, err := experiments.RunSpectral()
		if report(err) {
			fmt.Println(res)
			if !res.Valid() {
				fmt.Fprintln(os.Stderr, "eig: spectral ground truth mismatch")
				failed = true
			}
		}
	}
	if section("dist") {
		res, err := experiments.RunDistributed(*seed)
		if report(err) {
			fmt.Println(res)
			if !res.Valid() {
				fmt.Fprintln(os.Stderr, "dist: distributed reduction mismatch")
				failed = true
			}
		}
	}
	if section("approx") {
		res, err := experiments.RunApprox(*seed)
		if report(err) {
			fmt.Println(res)
			if !res.Valid() {
				fmt.Fprintln(os.Stderr, "approx: estimator grading failed")
				failed = true
			}
		}
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment id(s) %q; known: tab1 fig1 fig5 thm345 thm6 thm7 rem1 scale baselines ecc deg eig dist approx all\n", *run)
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}
