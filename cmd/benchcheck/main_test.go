package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// record writes a minimal go-test-JSON benchmark record.  The name and
// the numbers are deliberately split across two Output events, as `go
// test -json` really emits them.
func record(t *testing.T, dir, name string, benches [][2]string) string {
	t.Helper()
	var b strings.Builder
	for _, bench := range benches {
		b.WriteString(`{"Action":"output","Package":"kronbip","Output":"` + bench[0] + `\n"}` + "\n")
		b.WriteString(`{"Action":"output","Package":"kronbip","Output":"` + bench[0] +
			`-8   \t     100\t  ` + bench[1] + ` ns/op\n"}` + "\n")
	}
	b.WriteString(`{"Action":"pass","Package":"kronbip"}` + "\n")
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseRecordSplitOutput(t *testing.T) {
	dir := t.TempDir()
	path := record(t, dir, "BENCH_2026-01-01.json", [][2]string{
		{"BenchmarkStream_EachEdgeSerial", "10103803"},
		{"BenchmarkScratchPool/pooled", "13911"},
		{"BenchmarkPollerCancelled", "14.86"},
	})
	ns, err := parseRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkStream_EachEdgeSerial": 10103803,
		"BenchmarkScratchPool/pooled":    13911,
		"BenchmarkPollerCancelled":       14.86,
	}
	if len(ns) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(ns), len(want), ns)
	}
	for name, v := range want {
		if got := ns[name]; got != v {
			t.Fatalf("%s = %v, want %v (GOMAXPROCS suffix not stripped?)", name, got, v)
		}
	}
}

func TestCompareWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, "BENCH_2026-01-01.json", [][2]string{
		{"BenchmarkA", "1000"}, {"BenchmarkB", "500"},
	})
	record(t, dir, "BENCH_2026-01-02.json", [][2]string{
		{"BenchmarkA", "1800"}, {"BenchmarkB", "400"}, {"BenchmarkC", "7"},
	})
	var out bytes.Buffer
	if code := realMain([]string{"-dir", dir}, &out); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	for _, want := range []string{
		"BenchmarkA: old=1000 new=1800 ratio=1.80 (limit 2.0x) ok",
		"BenchmarkC: new benchmark",
		"within their limits (2.0x general, 1.2x stream)",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	dir := t.TempDir()
	old := record(t, dir, "BENCH_2026-01-01.json", [][2]string{{"BenchmarkA", "1000"}})
	new_ := record(t, dir, "BENCH_2026-01-02.json", [][2]string{{"BenchmarkA", "2500"}})
	var out bytes.Buffer
	if code := realMain([]string{old, new_}, &out); code == 0 {
		t.Fatalf("2.5x regression passed, output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ratio=2.50 (limit 2.0x) REGRESSED") {
		t.Fatalf("output missing regression verdict:\n%s", out.String())
	}
	// A looser explicit threshold accepts the same pair.
	out.Reset()
	if code := realMain([]string{"-threshold", "3", old, new_}, &out); code != 0 {
		t.Fatalf("exit %d under -threshold 3, output:\n%s", code, out.String())
	}
}

// TestStreamThresholdTighter: a 1.5x slide is fine for a general
// benchmark but fails a BenchmarkStream_* one, whose limit is 1.2x.
func TestStreamThresholdTighter(t *testing.T) {
	dir := t.TempDir()
	old := record(t, dir, "BENCH_2026-01-01.json", [][2]string{
		{"BenchmarkStream_ShardedBatch", "1000"}, {"BenchmarkOther", "1000"},
	})
	new_ := record(t, dir, "BENCH_2026-01-02.json", [][2]string{
		{"BenchmarkStream_ShardedBatch", "1500"}, {"BenchmarkOther", "1500"},
	})
	var out bytes.Buffer
	if code := realMain([]string{old, new_}, &out); code == 0 {
		t.Fatalf("1.5x stream regression passed, output:\n%s", out.String())
	}
	for _, want := range []string{
		"BenchmarkStream_ShardedBatch: old=1000 new=1500 ratio=1.50 (limit 1.2x) REGRESSED",
		"BenchmarkOther: old=1000 new=1500 ratio=1.50 (limit 2.0x) ok",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	// Loosening -stream-threshold accepts the same pair.
	out.Reset()
	if code := realMain([]string{"-stream-threshold", "1.6", old, new_}, &out); code != 0 {
		t.Fatalf("exit %d under -stream-threshold 1.6, output:\n%s", code, out.String())
	}
}

// TestDistgenThresholdIntermediate: a 1.8x slide passes a general
// benchmark (2.0x) but fails a BenchmarkDistGen* one, whose limit is
// 1.5x — and the family has its own flag.
func TestDistgenThresholdIntermediate(t *testing.T) {
	dir := t.TempDir()
	old := record(t, dir, "BENCH_2026-01-01.json", [][2]string{
		{"BenchmarkDistGenMerge", "1000"}, {"BenchmarkOther", "1000"},
	})
	new_ := record(t, dir, "BENCH_2026-01-02.json", [][2]string{
		{"BenchmarkDistGenMerge", "1800"}, {"BenchmarkOther", "1800"},
	})
	var out bytes.Buffer
	if code := realMain([]string{old, new_}, &out); code == 0 {
		t.Fatalf("1.8x distgen regression passed, output:\n%s", out.String())
	}
	for _, want := range []string{
		"BenchmarkDistGenMerge: old=1000 new=1800 ratio=1.80 (limit 1.5x) REGRESSED",
		"BenchmarkOther: old=1000 new=1800 ratio=1.80 (limit 2.0x) ok",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	out.Reset()
	if code := realMain([]string{"-distgen-threshold", "1.9", old, new_}, &out); code != 0 {
		t.Fatalf("exit %d under -distgen-threshold 1.9, output:\n%s", code, out.String())
	}
}

// TestNoiseFloor: nanosecond-scale jitter (10ns -> 67ns at 100
// iterations) passes regardless of ratio, but a genuine blowup on the
// same benchmark clears the floor and still fails.
func TestNoiseFloor(t *testing.T) {
	dir := t.TempDir()
	old := record(t, dir, "BENCH_2026-01-01.json", [][2]string{{"BenchmarkPollerCancelled", "10"}})
	new_ := record(t, dir, "BENCH_2026-01-02.json", [][2]string{{"BenchmarkPollerCancelled", "67"}})
	var out bytes.Buffer
	if code := realMain([]string{old, new_}, &out); code != 0 {
		t.Fatalf("sub-floor jitter failed, output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ok (below noise floor)") {
		t.Fatalf("output missing noise-floor verdict:\n%s", out.String())
	}

	blown := record(t, dir, "BENCH_2026-01-03.json", [][2]string{{"BenchmarkPollerCancelled", "10000"}})
	out.Reset()
	if code := realMain([]string{old, blown}, &out); code == 0 {
		t.Fatalf("1000x blowup passed, output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("output missing regression verdict:\n%s", out.String())
	}

	// The floor is tunable: raising it above the blown result accepts it.
	out.Reset()
	if code := realMain([]string{"-noise-floor", "20000", old, blown}, &out); code != 0 {
		t.Fatalf("exit %d under -noise-floor 20000, output:\n%s", code, out.String())
	}
}

func TestCompareFewerThanTwoRecordsPasses(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, "BENCH_2026-01-01.json", [][2]string{{"BenchmarkA", "1000"}})
	var out bytes.Buffer
	if code := realMain([]string{"-dir", dir}, &out); code != 0 {
		t.Fatalf("exit %d with a single record:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "nothing to compare") {
		t.Fatalf("output %q", out.String())
	}
}

func TestMissingBaselinePasses(t *testing.T) {
	dir := t.TempDir()
	new_ := record(t, dir, "BENCH_2026-01-02.json", [][2]string{{"BenchmarkA", "1000"}})
	var out bytes.Buffer
	code := realMain([]string{filepath.Join(dir, "BENCH_2026-01-01.json"), new_}, &out)
	if code != 0 {
		t.Fatalf("exit %d with missing baseline:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "nothing to compare") {
		t.Fatalf("output %q", out.String())
	}
}

func TestNoOverlapPasses(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, "BENCH_2026-01-01.json", [][2]string{{"BenchmarkOld", "1000"}})
	record(t, dir, "BENCH_2026-01-02.json", [][2]string{{"BenchmarkNew", "1000"}})
	var out bytes.Buffer
	if code := realMain([]string{"-dir", dir}, &out); code != 0 {
		t.Fatalf("exit %d with disjoint benchmark sets:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no overlapping benchmarks") {
		t.Fatalf("output %q", out.String())
	}
}

func TestEmptyRecordPasses(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, "BENCH_2026-01-01.json", nil)
	record(t, dir, "BENCH_2026-01-02.json", [][2]string{{"BenchmarkA", "1000"}})
	var out bytes.Buffer
	if code := realMain([]string{"-dir", dir}, &out); code != 0 {
		t.Fatalf("exit %d with an empty baseline record:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no overlapping benchmarks") {
		t.Fatalf("output %q", out.String())
	}
}

func TestPicksLexicallyLastTwo(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, "BENCH_2026-01-01.json", [][2]string{{"BenchmarkA", "1"}})
	record(t, dir, "BENCH_2026-01-02.json", [][2]string{{"BenchmarkA", "1000"}})
	record(t, dir, "BENCH_2026-01-03.json", [][2]string{{"BenchmarkA", "1100"}})
	old, new_, err := pickPair(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(old) != "BENCH_2026-01-02.json" || filepath.Base(new_) != "BENCH_2026-01-03.json" {
		t.Fatalf("picked (%s, %s)", old, new_)
	}
	// The comparison must use 02 as baseline: 1100/1000 passes, 1100/1 would not.
	var out bytes.Buffer
	if code := realMain([]string{"-dir", dir}, &out); code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "ratio=1.10 (limit 2.0x) ok") {
		t.Fatalf("output %q", out.String())
	}
}
