// Command benchcheck compares the two most recent BENCH_<date>.json
// records (written by `make bench-json`) and fails when any benchmark
// regressed by more than a threshold factor.
//
// Usage:
//
//	benchcheck                     # compare the last two BENCH_*.json in .
//	benchcheck -threshold 1.5      # tighter regression bound
//	benchcheck old.json new.json   # compare two explicit records
//
// The general threshold is deliberately generous (2x by default): the
// dated records come from whatever machine ran `make bench-json`, so
// only order-of-magnitude regressions — an accidental O(n²), a lost
// parallel path — should fail the build, not scheduler noise.  The
// BenchmarkStream_* family is held to a tighter bound (-stream-threshold,
// 1.2x by default): those benchmarks stream millions of edges per op, so
// their ns/op is stable enough that a >20% slide means the hot loop
// actually regressed; BenchmarkStreamWire* (the binary wire format's
// encode/socket/decode path) gets its own equally tight -wire-threshold.  Results whose new ns/op sits below the noise
// floor (-noise-floor, 500ns by default) never fail regardless of
// ratio: a 10ns op measured for 100 iterations is a ~1µs sample, and a
// cache miss or a scheduler preemption triples it run to run.  A real
// blowup on such a benchmark still fails because it lands above the
// floor.  With fewer than two records, a missing baseline file, or no
// overlapping benchmark names there is nothing to compare and the
// command notes why and passes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"kronbip/internal/cli"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout))
}

func realMain(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	dir := fs.String("dir", ".", "directory holding BENCH_<date>.json records")
	threshold := fs.Float64("threshold", 2.0, "fail when new ns/op exceeds old by this factor")
	streamThreshold := fs.Float64("stream-threshold", 1.2, "tighter factor applied to BenchmarkStream_* results")
	wireThreshold := fs.Float64("wire-threshold", 1.2, "factor applied to BenchmarkStreamWire* results (binary wire encode/socket path)")
	serveThreshold := fs.Float64("serve-threshold", 1.5, "factor applied to BenchmarkServe* results (middleware per-request cost)")
	distgenThreshold := fs.Float64("distgen-threshold", 1.5, "factor applied to BenchmarkDistGen* results (coordinator merge path)")
	noiseFloor := fs.Float64("noise-floor", 500, "ns/op below which a result never counts as regressed")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	old, new_, err := pickPair(fs.Args(), *dir)
	if err != nil {
		return cli.Fail("benchcheck", err)
	}
	if old == "" {
		fmt.Fprintln(out, "benchcheck: fewer than two BENCH_*.json records; nothing to compare")
		return 0
	}
	// A missing baseline is not a failure: first run on a fresh checkout
	// or CI cache has nothing to regress against.
	if _, statErr := os.Stat(old); os.IsNotExist(statErr) {
		fmt.Fprintf(out, "benchcheck: baseline %s missing; nothing to compare\n", old)
		return 0
	}
	th := thresholds{
		general:    *threshold,
		stream:     *streamThreshold,
		wire:       *wireThreshold,
		serve:      *serveThreshold,
		distgen:    *distgenThreshold,
		noiseFloor: *noiseFloor,
	}
	if err := compare(old, new_, th, out); err != nil {
		return cli.Fail("benchcheck", err)
	}
	return 0
}

// thresholds carries the per-family regression bounds.  Stream
// benchmarks (the BenchmarkStream_ prefix, including /subtest variants)
// get the tight bound; serve benchmarks (BenchmarkServe*, the HTTP
// middleware per-request cost) and distgen benchmarks (BenchmarkDistGen*,
// the coordinator's parse+verify+ordered-merge path) an intermediate one
// — microseconds per op, so steadier than the general pool but noisier
// than the million-edge stream loops; everything else the generous one.
// noiseFloor is the absolute ns/op under which no ratio is trusted:
// nanosecond-scale ops at -benchtime 100x measure scheduler jitter,
// not the code.
type thresholds struct {
	general    float64
	stream     float64
	wire       float64
	serve      float64
	distgen    float64
	noiseFloor float64
}

const (
	streamPrefix  = "BenchmarkStream_"
	wirePrefix    = "BenchmarkStreamWire"
	servePrefix   = "BenchmarkServe"
	distgenPrefix = "BenchmarkDistGen"
)

func (t thresholds) for_(name string) float64 {
	switch {
	case strings.HasPrefix(name, wirePrefix):
		// The binary wire family streams the same millions of edges per op
		// as BenchmarkStream_ (the underscore keeps the prefixes disjoint),
		// so it earns the same tight bound.
		return t.wire
	case strings.HasPrefix(name, streamPrefix):
		return t.stream
	case strings.HasPrefix(name, servePrefix):
		return t.serve
	case strings.HasPrefix(name, distgenPrefix):
		return t.distgen
	}
	return t.general
}

// pickPair resolves the (old, new) record pair: two explicit paths, or
// the lexically-last two BENCH_*.json in dir (ISO dates sort by name).
func pickPair(args []string, dir string) (old, new_ string, err error) {
	switch len(args) {
	case 2:
		return args[0], args[1], nil
	case 0:
		files, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
		if err != nil {
			return "", "", err
		}
		sort.Strings(files)
		if len(files) < 2 {
			return "", "", nil
		}
		return files[len(files)-2], files[len(files)-1], nil
	default:
		return "", "", fmt.Errorf("want zero or two record paths, got %d", len(args))
	}
}

func compare(oldPath, newPath string, th thresholds, out io.Writer) error {
	oldNs, err := parseRecord(oldPath)
	if err != nil {
		return err
	}
	newNs, err := parseRecord(newPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(oldNs))
	for name := range oldNs {
		names = append(names, name)
	}
	sort.Strings(names)

	regressed, compared := 0, 0
	for _, name := range names {
		nw, ok := newNs[name]
		if !ok {
			fmt.Fprintf(out, "benchcheck %s: removed (was %.0f ns/op)\n", name, oldNs[name])
			continue
		}
		compared++
		ratio := nw / oldNs[name]
		limit := th.for_(name)
		verdict := "ok"
		if ratio > limit {
			if nw < th.noiseFloor {
				verdict = "ok (below noise floor)"
			} else {
				verdict = "REGRESSED"
				regressed++
			}
		}
		fmt.Fprintf(out, "benchcheck %s: old=%.0f new=%.0f ratio=%.2f (limit %.1fx) %s\n",
			name, oldNs[name], nw, ratio, limit, verdict)
	}
	for name := range newNs {
		if _, ok := oldNs[name]; !ok {
			fmt.Fprintf(out, "benchcheck %s: new benchmark (%.0f ns/op)\n", name, newNs[name])
		}
	}
	if regressed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond their limit (%.1fx general, %.1fx stream, %.1fx wire, %.1fx serve, %.1fx distgen; %s vs %s)",
			regressed, th.general, th.stream, th.wire, th.serve, th.distgen, filepath.Base(oldPath), filepath.Base(newPath))
	}
	// Disjoint benchmark sets (a rename sweep, a record from a different
	// package list) leave nothing comparable — note it and pass.
	if compared == 0 {
		fmt.Fprintf(out, "benchcheck: no overlapping benchmarks between %s and %s; nothing to compare\n",
			filepath.Base(oldPath), filepath.Base(newPath))
		return nil
	}
	fmt.Fprintf(out, "benchcheck: %d benchmark(s) within their limits (%.1fx general, %.1fx stream) of %s\n",
		compared, th.general, th.stream, filepath.Base(oldPath))
	return nil
}

// benchLine matches a benchmark result in reassembled `go test` output.
// The name may carry a `-N` GOMAXPROCS suffix and `/subtest` segments;
// `go test -json` often splits the name and the numbers across separate
// Output events, so parseRecord matches against the concatenated text.
var benchLine = regexp.MustCompile(`(Benchmark[\w./-]+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseRecord extracts name -> ns/op from a `go test -json` record.
func parseRecord(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var text strings.Builder
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		var ev struct {
			Action string
			Output string
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("%s: not go-test-JSON: %w", path, err)
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	ns := make(map[string]float64)
	for _, m := range benchLine.FindAllStringSubmatch(text.String(), -1) {
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		ns[m[1]] = v
	}
	// An empty result set is legal (a record from a run whose benchmarks
	// were all filtered out); compare reports the no-overlap note.
	return ns, nil
}
