package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"kronbip/internal/cli"
	"kronbip/internal/obs"
	"kronbip/internal/obs/timeline"
	"kronbip/internal/serve"
)

// cmdServe runs the long-lived generation & ground-truth HTTP service.
// It serves until the signal context is cancelled (SIGINT/SIGTERM),
// then drains: running jobs finish, in-flight responses complete, and a
// clean drain exits 0.
func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; ':0' picks a free port)")
	workers := fs.Int("workers", 0, "generation jobs run concurrently (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 16, "jobs accepted beyond the running set before submissions get 429")
	maxEdges := fs.Int64("max-edges", serve.DefaultMaxEdges, "per-job closed-form |E_C| budget; bigger specs get 413 (negative = unlimited)")
	jobTimeout := fs.Duration("job-timeout", 10*time.Minute, "per-job generation deadline (negative = none)")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "sync endpoint (truth/stats/submit) timeout")
	retryAfter := fs.Duration("retry-after", time.Second, "backoff hint sent with 429 responses")
	retention := fs.Int("retention", 64, "finished jobs kept pollable before eviction")
	cacheSize := fs.Int("cache", 128, "factor-spec product cache capacity (LRU)")
	shards := fs.Int("shards", 0, "per-job generation shards (0 = GOMAXPROCS)")
	maxLeases := fs.Int("max-leases", 0, "concurrent block leases streamed for dist-gen coordinators before 429 (0 = 2×GOMAXPROCS)")
	drain := fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound: running jobs and open responses get this long to finish")
	auditOn := fs.Bool("audit", false, "run the online ground-truth auditor inside every job by default")
	auditSample := fs.Int("audit-sample", 0, "auditor edge-membership sampling stride (0 = default 1024)")
	sloWindow := fs.Duration("slo-window", time.Minute, "rolling window the SLO evaluator judges over")
	sloP99 := fs.Duration("slo-p99", time.Second, "p99 latency objective for non-streaming routes; /readyz answers 503 while burned (negative = disabled)")
	sloErrRate := fs.Float64("slo-error-rate", 0.05, "5xx error-rate objective as a fraction (0 = zero tolerance, negative = disabled)")
	accessLog := fs.String("access-log", "", "write one logfmt line per request (req_id, trace_id, route, status) to this file ('-' = stderr)")
	flightDump := fs.String("flight-dump", "", "also write flight-recorder dumps (SIGQUIT, panic, final drain) to this file")
	obsFlags := obs.RegisterFlags(fs)
	tlFlags := timeline.RegisterFlags(fs)
	verb := cli.RegisterVerbosity(fs)
	fs.Parse(args)

	// A service is never a black box: instrumentation is on for the
	// whole process lifetime regardless of the obs flags, so /metrics
	// and /metrics.json always have live data.
	obs.SetEnabled(true)
	cli.SetFlightDumpPath(*flightDump)
	stopObs, err := obsFlags.Start()
	if err != nil {
		return err
	}
	stopTL, err := tlFlags.Start(nil)
	if err != nil {
		stopObs()
		return err
	}

	// File-backed access logs are buffered: one small write per request
	// instead of one syscall per line.  The buffer is flushed after the
	// drain completes (no requests are in flight by then, so the flush
	// races nothing) and the file closed — a SIGINT shutdown loses no
	// lines.  Stderr stays unbuffered so interactive tails are live.
	var accessW io.Writer
	var accessF *os.File
	var accessBuf *bufio.Writer
	switch *accessLog {
	case "":
	case "-":
		accessW = os.Stderr
	default:
		f, err := os.Create(*accessLog)
		if err != nil {
			stopTL()
			stopObs()
			return fmt.Errorf("serve: -access-log: %w", err)
		}
		accessF = f
		accessBuf = bufio.NewWriter(f)
		accessW = accessBuf
	}

	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		MaxEdges:       *maxEdges,
		JobTimeout:     *jobTimeout,
		RequestTimeout: *reqTimeout,
		RetryAfter:     *retryAfter,
		Retention:      *retention,
		CacheSize:      *cacheSize,
		Shards:         *shards,
		MaxLeases:      *maxLeases,
		Audit:          *auditOn,
		AuditSample:    *auditSample,
		SLOWindow:      *sloWindow,
		SLOP99:         *sloP99,
		SLOErrorRate:   sloErrRate,
		AccessLog:      accessW,
	})
	if err := srv.Listen(*addr); err != nil {
		stopTL()
		stopObs()
		return err
	}
	// The "listening on" line is load-bearing: the smoke harness and
	// other scripted drivers scrape the bound address from it (':0'
	// binds an ephemeral port).
	verb.Summaryf("serve: kronbip %s listening on http://%s\n", cli.Build(), srv.Addr())

	srvErr := srv.Serve(ctx, *drain)
	verb.Summaryf("serve: drained and stopped\n")
	// obs.SetEnabled stays flipped by stopObs/stopTL only if flags were
	// set; flip it off explicitly for symmetry.
	if err := stopTL(); err != nil && srvErr == nil {
		srvErr = err
	}
	if err := stopObs(); err != nil && srvErr == nil {
		srvErr = err
	}
	if accessBuf != nil {
		if err := accessBuf.Flush(); err != nil && srvErr == nil {
			srvErr = err
		}
	}
	if accessF != nil {
		if err := accessF.Close(); err != nil && srvErr == nil {
			srvErr = err
		}
	}
	// Leave the final post-mortem record behind (-flight-dump): the
	// drained process writes its flight dump once, after the access log
	// is safely on disk.
	if err := cli.FlushFlightDump(); err != nil && srvErr == nil {
		srvErr = err
	}
	obs.SetEnabled(false)
	return srvErr
}
