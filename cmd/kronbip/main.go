// Command kronbip generates bipartite Kronecker product graphs with exact
// 4-cycle ground truth, per Steil et al. (IPDPSW 2020).
//
// Subcommands:
//
//	kronbip generate  -factor unicode -mode selfloop -edges-out c.tsv
//	    Stream the product's edge list to a file (or stdout) without ever
//	    materializing it, plus a ground-truth summary on stderr.
//
//	kronbip stats     -factor unicode
//	    Print factor and product statistics (Table I style).
//
//	kronbip truth     -factor unicode -vertex 12345
//	kronbip truth     -factor unicode -edge 12345,67890
//	    O(1) point queries: degree, 2-walks and 4-cycle counts at a product
//	    vertex or edge.
//
//	kronbip verify    -factor crown4 -samples 100
//	    Materialize the product and cross-check sampled ground truth against
//	    brute-force counting (exit 1 on mismatch).
//
//	kronbip serve     -addr 127.0.0.1:8080
//	    Run the long-lived generation & ground-truth HTTP service
//	    (internal/serve): job submission with admission control, sync
//	    /v1/truth and /v1/stats from factor closed forms, NDJSON/TSV edge
//	    streaming, /metrics.  SIGINT drains running jobs and exits 0.
//
//	kronbip dist-gen  -worker http://h1:8080 -worker http://h2:8080 -factor crown4
//	    Coordinate distributed generation: partition the spec into a 2D
//	    block grid, lease blocks to the serve replicas (POST /v1/leases),
//	    and merge the returned streams into one verified, ordered edge
//	    list (internal/distgen).  Failed or straggling leases are
//	    re-issued; -audit runs the ground-truth auditor on the merge.
//
//	kronbip version
//	    Print the build identity (module version, go version, VCS revision)
//	    from debug.ReadBuildInfo — the same identity serve reports in its
//	    Server header and /healthz payload.
//
// Factors (-factor): unicode, crown<N>, biclique<NU>x<NW>, cycle<N>,
// path<N>, star<N>, hypercube<D>, sf<NU>x<NW>x<EDGES> (bipartite
// scale-free), product(<F1>,<F2>) (materialized two-factor product as a
// single factor).  -factor repeats: each extra occurrence chains one more
// Kronecker level onto the product,
//
//	kronbip generate -factor crown4 -factor path3 -factor path2 ...
//
// without ever materializing the intermediate levels.  -mode selects
// selfloop ((A+I)⊗A-style, default) or nonbip (K-odd ⊗ B; pairs the
// first bipartite factor with a 5-cycle A).
//
// Generation streams shards in parallel on the internal/exec engine:
// -shards defaults to GOMAXPROCS (stdout output forces one shard), and
// -timeout bounds the run.  SIGINT/SIGTERM cancel cleanly mid-stream —
// partial output is reported as such and the process exits 130.
//
// -audit cross-checks the streamed output against the paper's theorems
// during the run (internal/audit) and exits non-zero on any violation;
// -timeline-out / -journal-out record a per-shard event timeline
// (internal/obs/timeline) as Chrome trace_event JSON / logfmt, distinct
// from -trace, which captures the Go runtime trace.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"kronbip/internal/audit"
	"kronbip/internal/cli"
	"kronbip/internal/core"
	"kronbip/internal/count"
	"kronbip/internal/exec"
	"kronbip/internal/obs"
	"kronbip/internal/obs/timeline"
	"kronbip/internal/spec"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(cli.ExitUsage)
	}
	// A panic unwinding out of any subcommand dumps the flight recorder
	// before re-raising — the crash output then carries the event trail
	// that led up to it, not just the stack.
	defer cli.FlightDumpOnPanic()
	// Every subcommand runs under a signal-aware context: Ctrl-C or SIGTERM
	// cancels mid-generation and the engine unwinds with a partial-work
	// error instead of being killed with buffers in flight.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// SIGQUIT is repurposed from kill-with-stack-dump to a live
	// flight-recorder dump: the process reports what it was doing and
	// keeps running (long generations and serve stay up).
	stopQuit := cli.StartFlightDumpOnQuit()
	defer stopQuit()

	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "generate":
		err = cmdGenerate(ctx, args)
	case "stats":
		err = cmdStats(ctx, args)
	case "truth":
		err = cmdTruth(ctx, args)
	case "verify":
		err = cmdVerify(ctx, args)
	case "serve":
		err = cmdServe(ctx, args)
	case "dist-gen":
		err = cmdDistGen(ctx, args)
	case "version", "-version", "--version":
		fmt.Printf("kronbip %s\n", cli.Build())
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "kronbip: unknown subcommand %q\n", cmd)
		usage()
		os.Exit(cli.ExitUsage)
	}
	if code := cli.Fail("kronbip "+cmd, err); code != cli.ExitOK {
		os.Exit(code)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: kronbip <generate|stats|truth|verify|serve|dist-gen|version> [flags]  (run a subcommand with -h for its flags)")
}

// factorChain collects repeated -factor flags in chain order.  The flag
// surface mirrors the serve query decoder's repeated ?factor= fields;
// both funnel into the same spec vocabulary.
type factorChain []string

func (f *factorChain) String() string { return strings.Join(*f, ",") }

func (f *factorChain) Set(v string) error {
	*f = append(*f, v)
	return nil
}

// factorFlag registers the repeatable -factor flag.  The returned slice
// is empty until Parse; resolve defaults with orDefault after parsing.
func factorFlag(fs *flag.FlagSet) *factorChain {
	var f factorChain
	fs.Var(&f, "factor", "factor spec; repeat to chain additional Kronecker levels")
	return &f
}

func (f factorChain) orDefault(def string) []string {
	if len(f) == 0 {
		return []string{def}
	}
	return f
}

// buildProduct assembles the product named by a (-factor…, -mode, -seed)
// flag set through the shared spec vocabulary, so the CLI and the
// serve request decoder resolve specs identically.
func buildProduct(factors []string, mode string, seed int64) (*core.Product, error) {
	return spec.Spec{Factors: factors, Mode: mode, Seed: seed}.Build()
}

func cmdGenerate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	factor := factorFlag(fs)
	mode := fs.String("mode", "selfloop", "selfloop | nonbip")
	seed := fs.Int64("seed", 2020, "factor seed")
	out := fs.String("edges-out", "-", "edge list destination ('-' for stdout)")
	offset := fs.Int64("offset", 0, "skip the first N edges of the canonical order (closed-form seek, no prefix work)")
	limit := fs.Int64("limit", -1, "emit at most N edges from -offset (-1 = through the end)")
	shards := fs.Int("shards", 0, "shard files to write in parallel (<edges-out>.shardK); 0 = GOMAXPROCS, 1 = single file; needs -edges-out for N>1")
	timeout := fs.Duration("timeout", 0, "abort generation after this duration (0 = none)")
	auditOn := fs.Bool("audit", false, "cross-check the streamed output against theorem ground truth (degree sums, dual-route 4-cycles, sampled edge membership and Thm. 3/4 spot checks); exit non-zero on any violation")
	auditSample := fs.Int("audit-sample", 0, "with -audit, membership-check every Nth streamed edge (0 = default 1024, 1 = every edge)")
	auditDrop := fs.Int64("audit-inject-drop", 0, "testing hook: make the auditor believe N streamed edges were lost (forces a stream.count violation)")
	obsFlags := obs.RegisterFlags(fs)
	tlFlags := timeline.RegisterFlags(fs)
	verb := cli.RegisterVerbosity(fs)
	fs.Parse(args)

	p, err := buildProduct(factor.orDefault("unicode"), *mode, *seed)
	if err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Resolve the requested edge range.  A ranged run is single-sharded
	// (one ordered slice of the canonical stream) and unaudited (the
	// audit invariants are whole-stream properties).
	total := p.NumEdges()
	lo, hi := *offset, total
	if *limit >= 0 && lo+*limit < hi {
		hi = lo + *limit
	}
	ranged := lo != 0 || hi != total
	if ranged {
		if *auditOn || *auditDrop > 0 {
			return fmt.Errorf("-audit requires the full stream; drop -offset/-limit")
		}
		if *shards > 1 {
			return fmt.Errorf("-shards %d cannot combine with -offset/-limit (a range is one ordered slice)", *shards)
		}
		if lo < 0 || lo > total {
			return fmt.Errorf("-offset %d out of range [0,%d]", lo, total)
		}
	}

	// Resolve -shards: unset/<=0 means "use every core".  Stdout can only
	// take a single interleaving-free stream, so sharded output needs a
	// file prefix; explicitly asking for both is an error rather than a
	// silent fallback to single-sharded output.
	nshards := *shards
	if nshards <= 0 {
		nshards = runtime.GOMAXPROCS(0)
	}
	if *out == "-" {
		if *shards > 1 {
			return fmt.Errorf("-shards %d writes <prefix>.shardK files and cannot go to stdout; pass -edges-out <prefix> or -shards 1", *shards)
		}
		nshards = 1
	}

	stopObs, err := obsFlags.Start()
	if err != nil {
		return err
	}
	stopTL, err := tlFlags.Start(os.Stderr)
	if err != nil {
		stopObs()
		return err
	}
	// The auditor taps the edge stream (per-shard child sinks) and runs
	// the theorem cross-checks after generation; -audit-inject-drop is
	// the negative-path hook proving a corrupted stream exits non-zero.
	var auditor *audit.Auditor
	if *auditOn || *auditDrop > 0 {
		auditor = audit.New(p, audit.Options{SampleEvery: *auditSample})
	}
	// The progress reporter samples the stream's process-wide counters
	// (baselined at Start, so the numbers are per-run) at the requested
	// interval; it stops — and gets out of the way of the summary line —
	// before the metrics snapshot is written.
	stopProgress := (&obs.Progress{
		Interval:    obsFlags.Progress,
		Edges:       obs.Default.Counter(core.MetricStreamEdges).Value,
		TotalEdges:  p.NumEdges(),
		ShardsDone:  obs.Default.Counter(core.MetricStreamShardsDone).Value,
		TotalShards: int64(nshards),
	}).Start()

	genErr := func() error {
		if ranged {
			return generateRange(ctx, p, *out, lo, hi, verb)
		}
		if nshards == 1 {
			return generateSingle(ctx, p, *out, auditor, verb)
		}
		return generateSharded(ctx, p, *out, nshards, auditor, verb)
	}()
	stopProgress()
	// Audit once the stream is complete but before the exporters stop,
	// so violations reach the timeline and the -metrics-out snapshot.
	if auditor != nil && genErr == nil {
		if *auditDrop > 0 {
			auditor.Stream().InjectDrop(*auditDrop)
		}
		report := auditor.Finalize()
		if err := report.WriteSummary(os.Stderr); err != nil {
			genErr = err
		} else {
			genErr = report.Err()
		}
	}
	if err := stopTL(); err != nil && genErr == nil {
		genErr = err
	}
	if err := stopObs(); err != nil && genErr == nil {
		genErr = err
	}
	return genErr
}

// generateSingle streams the whole edge set to one destination ('-' for
// stdout) through the engine's TSV sink, cancellably.  It runs as a
// one-shard parallel stream so the single-file path shares the sharded
// path's instrumentation (edge counters, span timing, shard completion).
// Every sink in the chain (TSV, counting, audit, and the MultiSink
// joining them) speaks exec.BatchSink, so the stream takes the batched
// hot loop: edges reach the encoders as whole pooled buffers.
func generateSingle(ctx context.Context, p *core.Product, out string, auditor *audit.Auditor, verb *cli.Verbosity) error {
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	tsv := exec.NewTSVSink(w)
	var cnt exec.CountingSink
	sink := exec.MultiSink{tsv, &cnt}
	if auditor != nil {
		sink = append(sink, auditor.Stream().ForShard())
	}
	err := p.StreamEdgesParallelContext(ctx, 1, func(int) exec.Sink { return sink })
	if err != nil {
		return err
	}
	verb.Summaryf("%v\nstreamed %d edges; global 4-cycles (ground truth): %d\n", p, cnt.Count(), p.GlobalFourCycles())
	return nil
}

// generateRange streams the [lo, hi) slice of the canonical edge order
// through the closed-form seek (core.EachEdgeRange): no prefix is
// generated, so resuming a multi-hour run at edge k costs O(K) to find
// k, not O(k) to replay it.
func generateRange(ctx context.Context, p *core.Product, out string, lo, hi int64, verb *cli.Verbosity) error {
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	tsv := exec.NewTSVSink(w)
	var cnt exec.CountingSink
	var sinkErr error
	err := p.EachEdgeRangeBatchContext(ctx, lo, hi, func(batch []exec.Edge) bool {
		if e := tsv.EdgeBatch(batch); e != nil {
			sinkErr = e
			return false
		}
		_ = cnt.EdgeBatch(batch)
		return true
	})
	if err == nil {
		err = sinkErr
	}
	if ferr := tsv.Flush(); err == nil {
		err = ferr
	}
	if err != nil {
		return err
	}
	verb.Summaryf("%v\nstreamed edges [%d,%d) of %d (%d edges)\n", p, lo, hi, p.NumEdges(), cnt.Count())
	return nil
}

// generateSharded writes the edge set as N shard files concurrently on the
// engine's bounded worker pool — the distributed-generation shape of the
// paper's future-work discussion, in-process.  Cancellation (Ctrl-C,
// -timeout) aborts all shards promptly, leaving partial shard files.
func generateSharded(ctx context.Context, p *core.Product, prefix string, shards int, auditor *audit.Auditor, verb *cli.Verbosity) error {
	if prefix == "-" {
		return fmt.Errorf("sharded output needs -edges-out to name a file prefix")
	}
	files := make([]*os.File, shards)
	sinks := make([]exec.Sink, shards)
	for s := 0; s < shards; s++ {
		f, err := os.Create(fmt.Sprintf("%s.shard%d", prefix, s))
		if err != nil {
			return err
		}
		defer f.Close()
		files[s] = f
		if auditor != nil {
			sinks[s] = exec.MultiSink{exec.NewTSVSink(f), auditor.Stream().ForShard()}
		} else {
			sinks[s] = exec.NewTSVSink(f)
		}
	}
	err := p.StreamEdgesParallelContext(ctx, shards, func(s int) exec.Sink {
		return sinks[s]
	})
	if err != nil {
		return err
	}
	verb.Summaryf("%v\nwrote %d shards (%d edges total); global 4-cycles (ground truth): %d\n",
		p, shards, p.NumEdges(), p.GlobalFourCycles())
	return nil
}

func cmdStats(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	factor := factorFlag(fs)
	mode := fs.String("mode", "selfloop", "selfloop | nonbip")
	seed := fs.Int64("seed", 2020, "factor seed")
	spectral := fs.Bool("spectral", false, "also report the exact spectral radius ρ(C)")
	diameter := fs.Bool("diameter", false, "also report the exact diameter (needs connected factors)")
	timeout := fs.Duration("timeout", 0, "abort after this duration (0 = none)")
	fs.Parse(args)

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	p, err := buildProduct(factor.orDefault("unicode"), *mode, *seed)
	if err != nil {
		return err
	}
	fa := p.FactorA()
	nu, nw := p.PartSizes()
	fmt.Printf("mode:      %v (arity %d)\n", p.Mode(), p.Arity())
	fmt.Printf("factor A:  n=%d m=%d □=%d triangles=%d\n", fa.N(), fa.G.NumEdges(), fa.Global4, fa.Triangles)
	for t, fb := range p.Factors()[1:] {
		label := "B: "
		if p.Arity() > 2 {
			label = fmt.Sprintf("B%d:", t+1)
		}
		fmt.Printf("factor %s n=%d m=%d □=%d\n", label, fb.N(), fb.G.NumEdges(), fb.Global4)
	}
	fmt.Printf("product:   n=%d (|U|=%d |W|=%d) m=%d\n", p.N(), nu, nw, p.NumEdges())
	fmt.Printf("product □: %d (closed form, no materialization)\n", p.GlobalFourCycles())
	fmt.Printf("connected by theorem: %v\n", p.ConnectedByTheorem())
	if *spectral {
		rho, err := p.SpectralRadiusContext(ctx, 1e-10, 20000)
		if err != nil {
			return err
		}
		fmt.Printf("spectral radius ρ(C): %.8f (= ρ(M)·ρ(B), factor power iteration)\n", rho)
	}
	if *diameter {
		d, err := p.DiameterContext(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("diameter: %d (exact, from factor BFS tables)\n", d)
	}
	return nil
}

func cmdTruth(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("truth", flag.ExitOnError)
	factor := factorFlag(fs)
	mode := fs.String("mode", "selfloop", "selfloop | nonbip")
	seed := fs.Int64("seed", 2020, "factor seed")
	vertex := fs.Int("vertex", -1, "product vertex to query")
	edge := fs.String("edge", "", "product edge to query, as 'v,w'")
	hops := fs.String("hops", "", "product vertex pair to query the exact distance of, as 'v,w'")
	timeout := fs.Duration("timeout", 0, "abort after this duration (0 = none)")
	fs.Parse(args)

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	p, err := buildProduct(factor.orDefault("unicode"), *mode, *seed)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if *vertex >= 0 {
		if *vertex >= p.N() {
			return fmt.Errorf("vertex %d out of range [0,%d)", *vertex, p.N())
		}
		digits := p.DigitsOf(*vertex)
		fmt.Printf("vertex %d = digits%v: degree=%d two-walks=%d 4-cycles=%d side=%v\n",
			*vertex, digits, p.DegreeAt(*vertex), p.TwoWalksAt(*vertex), p.VertexFourCyclesAt(*vertex), p.SideOf(*vertex))
	}
	if *edge != "" {
		parts := strings.Split(*edge, ",")
		if len(parts) != 2 {
			return fmt.Errorf("bad -edge %q (want 'v,w')", *edge)
		}
		v, err1 := strconv.Atoi(parts[0])
		w, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad -edge %q", *edge)
		}
		sq, err := p.EdgeFourCyclesAt(v, w)
		if err != nil {
			return err
		}
		gamma, err := p.EdgeClusteringAt(v, w)
		if err != nil {
			return err
		}
		fmt.Printf("edge (%d,%d): 4-cycles=%d clustering Γ=%.6f\n", v, w, sq, gamma)
	}
	if *hops != "" {
		parts := strings.Split(*hops, ",")
		if len(parts) != 2 {
			return fmt.Errorf("bad -hops %q (want 'v,w')", *hops)
		}
		v, err1 := strconv.Atoi(parts[0])
		w, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || v < 0 || w < 0 || v >= p.N() || w >= p.N() {
			return fmt.Errorf("bad -hops %q", *hops)
		}
		d, ok, err := p.HopsAtContext(ctx, v, w)
		if err != nil {
			return err
		}
		if ok {
			fmt.Printf("hops(%d,%d) = %d\n", v, w, d)
		} else {
			fmt.Printf("hops(%d,%d) = unreachable (different components)\n", v, w)
		}
	}
	if *vertex < 0 && *edge == "" && *hops == "" {
		return fmt.Errorf("nothing to query: pass -vertex, -edge and/or -hops")
	}
	return nil
}

func cmdVerify(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	factor := factorFlag(fs)
	mode := fs.String("mode", "selfloop", "selfloop | nonbip")
	seed := fs.Int64("seed", 2020, "factor seed")
	samples := fs.Int("samples", 100, "vertices and edges to sample (0 = exhaustive)")
	workers := fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	fs.Parse(args)

	p, err := buildProduct(factor.orDefault("crown4"), *mode, *seed)
	if err != nil {
		return err
	}
	g, err := p.MaterializeContext(ctx, *workers)
	if err != nil {
		return err
	}
	bad := 0
	if *samples == 0 {
		brute, err := count.VertexButterfliesParallelContext(ctx, g, *workers)
		if err != nil {
			return err
		}
		truth := p.VertexFourCycles()
		for v := range brute {
			if brute[v] != truth[v] {
				bad++
			}
		}
		fmt.Printf("exhaustive: %d/%d vertices match\n", len(brute)-bad, len(brute))
	} else {
		step := p.N() / *samples
		if step == 0 {
			step = 1
		}
		checked := 0
		for v := 0; v < p.N(); v += step {
			if count.VertexButterfliesAt(g, v) != p.VertexFourCyclesAt(v) {
				bad++
			}
			checked++
		}
		fmt.Printf("sampled: %d/%d vertices match\n", checked-bad, checked)
	}
	if bad > 0 {
		return fmt.Errorf("%d ground-truth mismatches", bad)
	}
	globalDirect, err := count.GlobalButterflies(g)
	if err != nil {
		return err
	}
	if globalDirect != p.GlobalFourCycles() {
		return fmt.Errorf("global mismatch: direct %d, formula %d", globalDirect, p.GlobalFourCycles())
	}
	fmt.Printf("global 4-cycles: %d (formula == direct)\n", globalDirect)
	return nil
}
