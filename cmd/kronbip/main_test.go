package main

import (
	"testing"

	"kronbip/internal/core"
)

// Factor-spec parsing itself is covered in internal/spec (the shared
// helper both the CLI and the serve decoder resolve through); this test
// pins the CLI wrapper's mode wiring.
func TestBuildProductModes(t *testing.T) {
	p, err := buildProduct("crown4", "selfloop", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode() != core.ModeSelfLoopFactor {
		t.Fatal("selfloop mode wrong")
	}
	p, err = buildProduct("crown4", "nonbip", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode() != core.ModeNonBipartiteFactor {
		t.Fatal("nonbip mode wrong")
	}
	if _, err := buildProduct("crown4", "bogus", 1); err == nil {
		t.Fatal("accepted bogus mode")
	}
	if _, err := buildProduct("nope", "selfloop", 1); err == nil {
		t.Fatal("accepted bogus factor")
	}
}
