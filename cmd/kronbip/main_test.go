package main

import (
	"testing"

	"kronbip/internal/core"
)

// Factor-spec parsing itself is covered in internal/spec (the shared
// helper both the CLI and the serve decoder resolve through); this test
// pins the CLI wrapper's mode wiring and the repeatable -factor flag.
func TestBuildProductModes(t *testing.T) {
	p, err := buildProduct([]string{"crown4"}, "selfloop", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode() != core.ModeSelfLoopFactor {
		t.Fatal("selfloop mode wrong")
	}
	p, err = buildProduct([]string{"crown4"}, "nonbip", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode() != core.ModeNonBipartiteFactor {
		t.Fatal("nonbip mode wrong")
	}
	if _, err := buildProduct([]string{"crown4"}, "bogus", 1); err == nil {
		t.Fatal("accepted bogus mode")
	}
	if _, err := buildProduct([]string{"nope"}, "selfloop", 1); err == nil {
		t.Fatal("accepted bogus factor")
	}
}

func TestBuildProductChain(t *testing.T) {
	p, err := buildProduct([]string{"crown4", "path3", "path2"}, "selfloop", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Arity() != 4 {
		t.Fatalf("chain arity = %d, want 4", p.Arity())
	}
	if p.N() != 8*8*3*2 {
		t.Fatalf("chain N = %d, want %d", p.N(), 8*8*3*2)
	}
}

func TestFactorChainFlag(t *testing.T) {
	var fc factorChain
	for _, v := range []string{"crown4", "path3"} {
		if err := fc.Set(v); err != nil {
			t.Fatal(err)
		}
	}
	if got := fc.orDefault("unicode"); len(got) != 2 || got[0] != "crown4" || got[1] != "path3" {
		t.Fatalf("factorChain = %v", got)
	}
	var empty factorChain
	if got := empty.orDefault("unicode"); len(got) != 1 || got[0] != "unicode" {
		t.Fatalf("empty factorChain default = %v", got)
	}
}
