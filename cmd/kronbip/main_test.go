package main

import (
	"testing"

	"kronbip/internal/core"
)

func TestParseFactorSpecs(t *testing.T) {
	cases := []struct {
		spec   string
		nu, nw int
		edges  int
	}{
		{"crown4", 4, 4, 12},
		{"biclique3x5", 3, 5, 15},
		{"cycle6", 3, 3, 6},
		{"path5", 3, 2, 4},
		{"star4", 1, 3, 3},
		{"hypercube3", 4, 4, 12},
		{"unicode", 254, 614, 1256},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			b, err := parseFactor(tc.spec, 2020)
			if err != nil {
				t.Fatal(err)
			}
			if b.NU() != tc.nu || b.NW() != tc.nw {
				t.Fatalf("parts %d/%d, want %d/%d", b.NU(), b.NW(), tc.nu, tc.nw)
			}
			if b.NumEdges() != tc.edges {
				t.Fatalf("edges = %d, want %d", b.NumEdges(), tc.edges)
			}
		})
	}
	// Scale-free spec shape.
	sf, err := parseFactor("sf20x30x50", 1)
	if err != nil {
		t.Fatal(err)
	}
	if sf.NU() != 20 || sf.NW() != 30 {
		t.Fatal("sf parts wrong")
	}
}

func TestParseFactorErrors(t *testing.T) {
	bad := []string{
		"nope", "crown2", "crownx", "biclique3", "biclique3x", "bicliqueAxB",
		"cycle5", "cycle3", "cyclex", "path1", "star1", "hypercube0",
		"hypercube99", "sf3x4", "sfAxBxC",
	}
	for _, spec := range bad {
		if _, err := parseFactor(spec, 1); err == nil {
			t.Fatalf("accepted bad spec %q", spec)
		}
	}
}

func TestBuildProductModes(t *testing.T) {
	p, err := buildProduct("crown4", "selfloop", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode() != core.ModeSelfLoopFactor {
		t.Fatal("selfloop mode wrong")
	}
	p, err = buildProduct("crown4", "nonbip", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode() != core.ModeNonBipartiteFactor {
		t.Fatal("nonbip mode wrong")
	}
	if _, err := buildProduct("crown4", "bogus", 1); err == nil {
		t.Fatal("accepted bogus mode")
	}
	if _, err := buildProduct("nope", "selfloop", 1); err == nil {
		t.Fatal("accepted bogus factor")
	}
}
