package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"kronbip/internal/cli"
	"kronbip/internal/distgen"
	"kronbip/internal/obs"
	"kronbip/internal/obs/timeline"
	"kronbip/internal/spec"
)

// cmdDistGen coordinates distributed 2D-blocked generation across a
// fleet of `kronbip serve` replicas (internal/distgen): partition the
// spec's canonical edge order into a rows×cols block grid, lease each
// block to a replica over POST /v1/leases, and merge the returned
// streams into one ordered output — verified block by block and in
// total against the closed forms, with the optional online auditor
// running over the merged stream.
func cmdDistGen(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("dist-gen", flag.ExitOnError)
	var workers factorChain
	fs.Var(&workers, "worker", "serve replica base URL (e.g. http://127.0.0.1:8080); repeat for each replica")
	factor := factorFlag(fs)
	mode := fs.String("mode", "selfloop", "selfloop | nonbip")
	seed := fs.Int64("seed", 2020, "factor seed")
	out := fs.String("edges-out", "-", "merged edge list destination ('-' for stdout)")
	format := fs.String("format", "tsv", "edge rendering leased from workers and written out: tsv | ndjson | bin (binary wire frames; dropped leases resume from the last complete frame)")
	rows := fs.Int("rows", 0, "row blocks of the grid (0 = auto-size with -cols from -target-block-edges)")
	cols := fs.Int("cols", 0, "column blocks of the grid (0 = auto-size)")
	targetBlock := fs.Int64("target-block-edges", distgen.DefaultTargetBlockEdges, "auto-sizing per-block edge target")
	leaseTimeout := fs.Duration("lease-timeout", 2*time.Minute, "per-lease deadline; an expired lease is re-issued to another replica")
	maxAttempts := fs.Int("max-attempts", 0, "failed leases tolerated per block before aborting (0 = 2 + worker count)")
	auditOn := fs.Bool("audit", false, "run the online ground-truth auditor over the merged stream; exit non-zero on any violation")
	auditSample := fs.Int("audit-sample", 0, "with -audit, membership-check every Nth merged edge (0 = default 1024)")
	requestID := fs.String("request-id", "", "correlation id propagated to every replica's lease (default: generated)")
	obsFlags := obs.RegisterFlags(fs)
	tlFlags := timeline.RegisterFlags(fs)
	verb := cli.RegisterVerbosity(fs)
	fs.Parse(args)

	if len(workers) == 0 {
		return errors.New("dist-gen: at least one -worker URL is required")
	}
	sp := spec.Spec{Factors: factor.orDefault("unicode"), Mode: *mode, Seed: *seed}

	stopObs, err := obsFlags.Start()
	if err != nil {
		return err
	}
	stopTL, err := tlFlags.Start(os.Stderr)
	if err != nil {
		stopObs()
		return err
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			stopTL()
			stopObs()
			return err
		}
		defer f.Close()
		w = f
	}
	// The coordinator writes whole verified blocks; buffering batches
	// those into large sequential writes.
	bw := bufio.NewWriterSize(w, 1<<20)

	res, runErr := distgen.Run(ctx, sp, bw, distgen.Options{
		Workers:          workers,
		Rows:             *rows,
		Cols:             *cols,
		TargetBlockEdges: *targetBlock,
		LeaseTimeout:     *leaseTimeout,
		MaxAttempts:      *maxAttempts,
		Audit:            *auditOn,
		AuditSample:      *auditSample,
		Format:           *format,
		RequestID:        *requestID,
	})
	if err := bw.Flush(); err != nil && runErr == nil {
		runErr = err
	}
	if res != nil {
		verb.Summaryf("dist-gen: merged %d edges from %d blocks (%dx%d grid, %d retried leases) req_id=%s\n",
			res.Edges, res.Blocks, res.Rows, res.Cols, res.Retries, res.RequestID)
		for _, ws := range res.Workers {
			verb.Summaryf("dist-gen: worker %s leases=%d failures=%d backoffs=%d ewma=%.3fs\n",
				ws.URL, ws.Leases, ws.Failures, ws.Backoffs, ws.EWMASeconds)
		}
		if *auditOn && runErr == nil {
			verb.Summaryf("dist-gen: audit checks=%d violations=%d\n", res.AuditChecks, res.AuditViolations)
		}
	}
	if err := stopTL(); err != nil && runErr == nil {
		runErr = err
	}
	if err := stopObs(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		return fmt.Errorf("dist-gen: %w", runErr)
	}
	return nil
}
