package main

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kronbip/internal/serve"
	"kronbip/internal/spec"
)

// TestCmdDistGen drives the dist-gen subcommand end to end against two
// in-process serve replicas: the merged file carries exactly |E_C|
// distinct edges and the online audit passes.
func TestCmdDistGen(t *testing.T) {
	ctx := context.Background()
	var urls []string
	for i := 0; i < 2; i++ {
		s := serve.New(serve.Config{Workers: 1})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			ts.Close()
			_ = s.Shutdown(5 * time.Second)
		})
		urls = append(urls, ts.URL)
	}
	out := filepath.Join(t.TempDir(), "merged.tsv")
	err := cmdDistGen(ctx, []string{
		"-worker", urls[0], "-worker", urls[1],
		"-factor", "crown3", "-factor", "path3",
		"-rows", "2", "-cols", "2",
		"-edges-out", out,
		"-audit",
	})
	if err != nil {
		t.Fatalf("cmdDistGen: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	p, err := spec.Spec{Factors: []string{"crown3", "path3"}}.WithDefaults().Build()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if int64(len(lines)) != p.NumEdges() {
		t.Fatalf("merged file has %d lines, closed form says %d", len(lines), p.NumEdges())
	}
	seen := map[string]bool{}
	for _, l := range lines {
		if !strings.Contains(l, "\t") {
			t.Fatalf("line %q is not tsv", l)
		}
		if seen[l] {
			t.Fatalf("duplicate edge %q in merged file", l)
		}
		seen[l] = true
	}

	// No workers is a usage error, not a hang.
	if err := cmdDistGen(ctx, []string{"-factor", "crown3"}); err == nil {
		t.Fatal("cmdDistGen accepted an empty worker list")
	}
	// A bad format is rejected by the coordinator's validation.
	if err := cmdDistGen(ctx, []string{"-worker", urls[0], "-factor", "crown3", "-format", "csv"}); err == nil {
		t.Fatal("cmdDistGen accepted -format csv")
	}
	// A bad factor spec fails when the coordinator builds the product
	// locally, before any lease is issued.
	if err := cmdDistGen(ctx, []string{"-worker", urls[0], "-factor", "nope"}); err == nil {
		t.Fatal("cmdDistGen accepted a bad factor")
	}
}
