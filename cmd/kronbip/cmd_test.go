package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"kronbip/internal/audit"
	"kronbip/internal/obs"
)

func TestCmdStats(t *testing.T) {
	ctx := context.Background()
	if err := cmdStats(ctx, []string{"-factor", "crown4"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStats(ctx, []string{"-factor", "biclique3x3", "-mode", "nonbip", "-spectral", "-diameter"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStats(ctx, []string{"-factor", "nope"}); err == nil {
		t.Fatal("accepted bad factor")
	}
	// Diameter on a disconnected (relaxed) product errors cleanly.
	if err := cmdStats(ctx, []string{"-factor", "unicode", "-diameter"}); err == nil {
		t.Fatal("diameter on relaxed product should error")
	}
	// A cancelled context aborts the spectral/diameter work with ctx.Err().
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	err := cmdStats(cctx, []string{"-factor", "biclique3x3", "-mode", "nonbip", "-spectral"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled stats -spectral returned %v, want context.Canceled", err)
	}
	err = cmdStats(cctx, []string{"-factor", "biclique3x3", "-mode", "nonbip", "-diameter"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled stats -diameter returned %v, want context.Canceled", err)
	}
}

func TestCmdTruth(t *testing.T) {
	ctx := context.Background()
	if err := cmdTruth(ctx, []string{"-factor", "crown4", "-vertex", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTruth(ctx, []string{"-factor", "crown4", "-edge", "1,63", "-hops", "1,63"}); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"-factor", "crown4"},                     // nothing to query
		{"-factor", "crown4", "-vertex", "9999"},  // out of range
		{"-factor", "crown4", "-edge", "0,0"},     // non-edge
		{"-factor", "crown4", "-edge", "zap"},     // malformed
		{"-factor", "crown4", "-edge", "x,y"},     // malformed ids
		{"-factor", "crown4", "-hops", "1"},       // malformed
		{"-factor", "crown4", "-hops", "1,99999"}, // out of range
	}
	for _, args := range cases {
		if err := cmdTruth(ctx, args); err == nil {
			t.Fatalf("cmdTruth accepted %v", args)
		}
	}
	// A cancelled context aborts the distance precompute with ctx.Err().
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	err := cmdTruth(cctx, []string{"-factor", "crown4", "-hops", "1,63"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled truth -hops returned %v, want context.Canceled", err)
	}
}

func TestCmdVerify(t *testing.T) {
	ctx := context.Background()
	if err := cmdVerify(ctx, []string{"-factor", "biclique3x4", "-samples", "0"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify(ctx, []string{"-factor", "crown3", "-samples", "10"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify(ctx, []string{"-factor", "bogus"}); err == nil {
		t.Fatal("accepted bad factor")
	}
}

func TestCmdGenerate(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	out := filepath.Join(dir, "edges.tsv")
	if err := cmdGenerate(ctx, []string{"-factor", "crown3", "-edges-out", out, "-shards", "1"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	// crown3 = C6: (2·6+6)·6 = 108 edges in mode (ii).
	if lines != 108 {
		t.Fatalf("wrote %d edges, want 108", lines)
	}
	// Sharded output.
	prefix := filepath.Join(dir, "sharded")
	if err := cmdGenerate(ctx, []string{"-factor", "crown3", "-edges-out", prefix, "-shards", "4"}); err != nil {
		t.Fatal(err)
	}
	total := 0
	for s := 0; s < 4; s++ {
		d, err := os.ReadFile(fmt.Sprintf("%s.shard%d", prefix, s))
		if err != nil {
			t.Fatal(err)
		}
		total += strings.Count(string(d), "\n")
	}
	if total != 108 {
		t.Fatalf("shards hold %d edges, want 108", total)
	}
	// -shards unset with a file destination defaults to GOMAXPROCS shards.
	autoPrefix := filepath.Join(dir, "auto")
	if err := cmdGenerate(ctx, []string{"-factor", "crown3", "-edges-out", autoPrefix}); err != nil {
		t.Fatal(err)
	}
	autoShards := runtime.GOMAXPROCS(0)
	total = 0
	if autoShards == 1 {
		d, err := os.ReadFile(autoPrefix)
		if err != nil {
			t.Fatal(err)
		}
		total = strings.Count(string(d), "\n")
	} else {
		for s := 0; s < autoShards; s++ {
			d, err := os.ReadFile(fmt.Sprintf("%s.shard%d", autoPrefix, s))
			if err != nil {
				t.Fatal(err)
			}
			total += strings.Count(string(d), "\n")
		}
	}
	if total != 108 {
		t.Fatalf("auto-sharded output holds %d edges, want 108", total)
	}
	// Explicit multi-sharding without a file prefix is rejected with a
	// helpful error, not silently run single-sharded.
	if err := cmdGenerate(ctx, []string{"-factor", "crown3", "-shards", "2"}); err == nil {
		t.Fatal("accepted -shards with stdout")
	}
	if err := cmdGenerate(ctx, []string{"-factor", "bogus"}); err == nil {
		t.Fatal("accepted bad factor")
	}
	// A cancelled context aborts generation with ctx.Err().
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = cmdGenerate(cctx, []string{"-factor", "crown3", "-edges-out", filepath.Join(dir, "cancelled"), "-shards", "2"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled generate returned %v, want context.Canceled", err)
	}
}

// TestCmdGenerateMetricsOut runs an instrumented generate and asserts the
// -metrics-out snapshot holds the per-shard edge counts, pool gauges and
// stage span the observability contract promises.
func TestCmdGenerateMetricsOut(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	prefix := filepath.Join(dir, "edges")
	mpath := filepath.Join(dir, "m.json")
	err := cmdGenerate(ctx, []string{
		"-factor", "crown3", "-edges-out", prefix, "-shards", "2",
		"-metrics-out", mpath, "-quiet",
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
		Spans    map[string]struct {
			Count        int64   `json:"count"`
			TotalSeconds float64 `json:"total_seconds"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics snapshot is not valid JSON: %v", err)
	}
	// crown3 = C6 in mode (ii): 108 product edges.  The counters are
	// process-wide, so other tests may have added more — assert at least.
	if got := snap.Counters["core.stream.edges"]; got < 108 {
		t.Errorf("core.stream.edges = %d, want >= 108", got)
	}
	var shardTotal int64
	for s := 0; s < 2; s++ {
		key := fmt.Sprintf("core.stream.edges{shard=%q}", fmt.Sprint(s))
		v, ok := snap.Counters[key]
		if !ok {
			t.Errorf("snapshot missing per-shard counter %s", key)
		}
		shardTotal += v
	}
	if shardTotal < 108 {
		t.Errorf("per-shard edge counters sum to %d, want >= 108", shardTotal)
	}
	if got := snap.Counters["core.stream.shards.done"]; got < 2 {
		t.Errorf("core.stream.shards.done = %d, want >= 2", got)
	}
	if got := snap.Counters["exec.pool.tasks"]; got < 2 {
		t.Errorf("exec.pool.tasks = %d, want >= 2", got)
	}
	if _, ok := snap.Gauges["exec.pool.peak"]; !ok {
		t.Error("snapshot missing gauge exec.pool.peak")
	}
	sp, ok := snap.Spans["core.stream"]
	if !ok {
		t.Fatal("snapshot missing span core.stream")
	}
	if sp.Count < 1 || sp.TotalSeconds < 0 {
		t.Errorf("span core.stream = %+v, want count >= 1", sp)
	}
}

// TestCmdGenerateTimelineOut runs a timeline-recorded generate and asserts
// the -timeline-out file is valid Chrome trace_event JSON carrying shard
// events, and that the straggler gauges reach both the JSON metrics
// snapshot and the Prometheus exposition.
func TestCmdGenerateTimelineOut(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	prefix := filepath.Join(dir, "edges")
	tpath := filepath.Join(dir, "t.json")
	jpath := filepath.Join(dir, "j.log")
	mpath := filepath.Join(dir, "m.json")
	err := cmdGenerate(ctx, []string{
		"-factor", "crown3", "-edges-out", prefix, "-shards", "3",
		"-timeline-out", tpath, "-journal-out", jpath, "-metrics-out", mpath, "-quiet",
	})
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(tpath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			Dur  int64  `json:"dur"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("-timeline-out is not valid Chrome trace JSON: %v", err)
	}
	byName := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q has ph=%q, want complete events (X)", ev.Name, ev.Ph)
		}
		byName[ev.Cat+"/"+ev.Name]++
	}
	if byName["shard/core.stream"] != 3 {
		t.Errorf("trace has %d shard/core.stream events, want 3 (one per shard)", byName["shard/core.stream"])
	}
	if byName["shard/exec.pool"] != 3 {
		t.Errorf("trace has %d shard/exec.pool events, want 3", byName["shard/exec.pool"])
	}

	journal, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(journal), "cat=shard name=core.stream") ||
		!strings.Contains(string(journal), "journal events=") {
		t.Errorf("-journal-out missing events or trailer:\n%s", journal)
	}

	// Straggler gauges: in the -metrics-out JSON snapshot...
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Gauges map[string]int64 `json:"gauges"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	key := `timeline.straggler_permille{group="shard/core.stream"}`
	v, ok := snap.Gauges[key]
	if !ok {
		t.Fatalf("metrics snapshot missing gauge %s (gauges: %v)", key, snap.Gauges)
	}
	if v < 1000 {
		t.Errorf("straggler ratio = %d permille, must be >= 1000 (max >= mean)", v)
	}
	if _, ok := snap.Gauges["timeline.events"]; !ok {
		t.Error("metrics snapshot missing timeline.events")
	}
	// ...and in the Prometheus exposition of the same registry.
	var prom bytes.Buffer
	if err := obs.Default.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), `timeline_straggler_permille{group="shard/core.stream"}`) {
		t.Error("Prometheus exposition missing timeline_straggler_permille series")
	}
}

// TestCmdGenerateAudit exercises the -audit positive path (clean run
// passes every theorem cross-check) and the injected-corruption negative
// path (non-nil ErrViolation, which cli.Fail turns into exit 1).
func TestCmdGenerateAudit(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	if err := cmdGenerate(ctx, []string{
		"-factor", "crown3", "-edges-out", filepath.Join(dir, "clean"),
		"-shards", "2", "-audit", "-audit-sample", "1", "-quiet",
	}); err != nil {
		t.Fatalf("clean audited run failed: %v", err)
	}
	// The nonbip mode takes the other theorem family (Thm. 3/5).
	if err := cmdGenerate(ctx, []string{
		"-factor", "biclique2x3", "-mode", "nonbip",
		"-edges-out", filepath.Join(dir, "clean2"), "-shards", "2", "-audit", "-quiet",
	}); err != nil {
		t.Fatalf("clean audited nonbip run failed: %v", err)
	}

	err := cmdGenerate(ctx, []string{
		"-factor", "crown3", "-edges-out", filepath.Join(dir, "corrupt"),
		"-shards", "2", "-audit", "-audit-inject-drop", "7", "-quiet",
	})
	if !errors.Is(err, audit.ErrViolation) {
		t.Fatalf("corrupted run returned %v, want audit.ErrViolation", err)
	}
	// -audit-inject-drop alone implies auditing (the hook is useless
	// without the checks).
	err = cmdGenerate(ctx, []string{
		"-factor", "crown3", "-edges-out", filepath.Join(dir, "corrupt2"),
		"-shards", "1", "-audit-inject-drop", "1", "-quiet",
	})
	if !errors.Is(err, audit.ErrViolation) {
		t.Fatalf("drop without -audit returned %v, want audit.ErrViolation", err)
	}
}
